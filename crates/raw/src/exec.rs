//! The translated-block executor: one Raw tile running host code.
//!
//! The runtime-execution tile spends its life inside translated blocks.
//! [`run_block`] interprets a block's [`RInsn`] sequence against the
//! tile's register file, charging base issue cycles per instruction and
//! delegating guest loads/stores to a [`DataPort`] — the DBT's pipelined
//! memory system — which returns the stall cycles the access cost.

#[cfg(test)]
use crate::isa::BrCond;
use crate::isa::{AluIOp, AluOp, BranchTarget, HelperKind, MemOp, RInsn, RReg, NUM_REGS};

/// Cycles of pipeline bubble on a taken branch (8-stage in-order pipe).
pub const TAKEN_BRANCH_PENALTY: u64 = 2;

/// The register file of one tile.
///
/// # Examples
///
/// ```
/// use vta_raw::{CoreState, RReg};
///
/// let mut s = CoreState::new();
/// s.set(RReg(5), 99);
/// assert_eq!(s.get(RReg(5)), 99);
/// s.set(RReg(0), 7); // writes to r0 are discarded
/// assert_eq!(s.get(RReg(0)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreState {
    regs: [u32; NUM_REGS],
}

impl CoreState {
    /// A zeroed register file.
    pub fn new() -> Self {
        CoreState {
            regs: [0; NUM_REGS],
        }
    }

    /// Reads a register (`r0` always reads zero).
    #[inline]
    pub fn get(&self, r: RReg) -> u32 {
        self.regs[r.0 as usize]
    }

    /// Writes a register (`r0` writes are discarded).
    #[inline]
    pub fn set(&mut self, r: RReg, v: u32) {
        if r.0 != 0 {
            self.regs[r.0 as usize] = v;
        }
    }
}

impl Default for CoreState {
    fn default() -> Self {
        Self::new()
    }
}

/// A fault raised while executing translated code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A guest access touched an unmapped page.
    Unmapped {
        /// The faulting guest address.
        addr: u32,
    },
    /// Host divide by zero (emitted guards forward x86 divide faults here).
    DivZero,
    /// `int` with a vector the virtual machine does not implement.
    BadInterrupt {
        /// The interrupt vector.
        vector: u8,
    },
    /// Guest code at `addr` does not decode; raised by a translated
    /// [`RInsn::Trap`] once execution actually reaches the bad bytes.
    Undecodable {
        /// Guest address of the undecodable instruction.
        addr: u32,
    },
    /// The block ran past its fuel limit (malformed internal loop).
    FuelExhausted,
}

impl From<crate::isa::TrapCause> for Fault {
    fn from(cause: crate::isa::TrapCause) -> Fault {
        match cause {
            crate::isa::TrapCause::BadInterrupt { vector } => Fault::BadInterrupt { vector },
            crate::isa::TrapCause::Undecodable { addr } => Fault::Undecodable { addr },
        }
    }
}

/// The execution tile's window onto the DBT memory system.
///
/// Implementations charge the *occupancy* of the access (software address
/// translation, cache, network, DRAM) and return it as stall cycles.
pub trait DataPort {
    /// Loads from guest virtual `addr`; returns `(value, stall_cycles)`.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Unmapped`] for accesses to unmapped guest pages.
    fn load(&mut self, addr: u32, op: MemOp) -> Result<(u32, u64), Fault>;

    /// Stores to guest virtual `addr`; returns stall cycles.
    ///
    /// # Errors
    ///
    /// Returns [`Fault::Unmapped`] for accesses to unmapped guest pages.
    fn store(&mut self, addr: u32, value: u32, op: MemOp) -> Result<u64, Fault>;

    /// Executes a runtime helper routine against the register file
    /// (canonical implementation: `vta_ir::apply_helper`).
    ///
    /// # Errors
    ///
    /// Returns [`Fault::DivZero`] for faulting divides.
    ///
    /// # Panics
    ///
    /// The default implementation panics; ports used with code that emits
    /// helpers must override it.
    fn helper(&mut self, kind: HelperKind, state: &mut CoreState) -> Result<(), Fault> {
        let _ = state;
        panic!("DataPort::helper not supported by this port (kind {kind:?})");
    }

    /// Whether a store into translated code pages has been observed since
    /// the current block was entered. Polled by [`RInsn::SmcGuard`] at
    /// superblock member boundaries; ports without self-modifying-code
    /// tracking report `false`.
    fn smc_pending(&self) -> bool {
        false
    }
}

/// Why a translated block returned control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockExit {
    /// Direct exit to a statically-known guest address (chainable).
    Goto(u32),
    /// Indirect exit (`Dispatch`): the next guest address was computed.
    Indirect(u32),
    /// The guest executed `int 0x80`; state is in the guest registers.
    Sys,
    /// The guest halted.
    Halt,
    /// A fault occurred.
    Fault(Fault),
}

impl BlockExit {
    /// The guest address execution continues at, when the exit carries
    /// one: the chain target of a `Goto` or the computed target of an
    /// `Indirect`. This is what a region-recording pass logs as the
    /// observed successor of the block.
    pub fn successor(self) -> Option<u32> {
        match self {
            BlockExit::Goto(t) | BlockExit::Indirect(t) => Some(t),
            BlockExit::Sys | BlockExit::Halt | BlockExit::Fault(_) => None,
        }
    }
}

/// Outcome of running a block: exit reason, cycles burned, instructions
/// retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOutcome {
    /// Why the block exited.
    pub exit: BlockExit,
    /// Total cycles (issue + memory stalls + branch penalties).
    pub cycles: u64,
    /// Host instructions retired.
    pub insns: u64,
    /// Cycles of `cycles` that were memory stalls (load/store wait on the
    /// translation pipeline, an L2 bank, or DRAM). Lets an observer
    /// decompose block time into issue vs. memory-stall cycles.
    pub stall_cycles: u64,
    /// [`RInsn::SmcGuard`]s executed without firing. In a superblock
    /// region a guard sits at each member junction, so this is the number
    /// of member boundaries crossed — the caller uses it to attribute
    /// retired guest instructions exactly when a region exits early
    /// (side exit, SMC guard, fault).
    pub guards_passed: u32,
}

impl RunOutcome {
    /// The observed successor address, when the exit carries one (see
    /// [`BlockExit::successor`]).
    pub fn successor(&self) -> Option<u32> {
        self.exit.successor()
    }
}

/// Executes one translated block to its exit.
///
/// `fuel` bounds retired instructions so a malformed internal loop cannot
/// hang the simulation (exceeding it yields [`Fault::FuelExhausted`]).
///
/// # Panics
///
/// Panics if execution falls off the end of `code` — the code generator
/// guarantees every block ends in a terminator.
pub fn run_block<P: DataPort + ?Sized>(
    state: &mut CoreState,
    code: &[RInsn],
    port: &mut P,
    fuel: u64,
) -> RunOutcome {
    let mut pc = 0usize;
    let mut cycles: u64 = 0;
    let mut insns: u64 = 0;
    let mut stalls: u64 = 0;
    let mut guards: u32 = 0;

    loop {
        if insns >= fuel {
            return RunOutcome {
                exit: BlockExit::Fault(Fault::FuelExhausted),
                cycles,
                insns,
                stall_cycles: stalls,
                guards_passed: guards,
            };
        }
        let insn = *code
            .get(pc)
            .expect("fell off the end of a translated block");
        pc += 1;
        insns += 1;
        cycles += insn.cycles();

        match insn {
            RInsn::Nop => {}
            RInsn::Alu { op, rd, rs, rt } => {
                let a = state.get(rs);
                let b = state.get(rt);
                let v = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                    AluOp::Nor => !(a | b),
                    AluOp::Slt => ((a as i32) < b as i32) as u32,
                    AluOp::Sltu => (a < b) as u32,
                    AluOp::Sllv => a.wrapping_shl(b & 31),
                    AluOp::Srlv => a.wrapping_shr(b & 31),
                    AluOp::Srav => ((a as i32).wrapping_shr(b & 31)) as u32,
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
                    AluOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
                    AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => {
                        if b == 0 {
                            return RunOutcome {
                                exit: BlockExit::Fault(Fault::DivZero),
                                cycles,
                                insns,
                                stall_cycles: stalls,
                                guards_passed: guards,
                            };
                        }
                        match op {
                            AluOp::Div => (a as i32).wrapping_div(b as i32) as u32,
                            AluOp::Divu => a / b,
                            AluOp::Rem => (a as i32).wrapping_rem(b as i32) as u32,
                            AluOp::Remu => a % b,
                            _ => unreachable!(),
                        }
                    }
                };
                state.set(rd, v);
            }
            RInsn::AluI { op, rd, rs, imm } => {
                let a = state.get(rs);
                let v = match op {
                    AluIOp::Addi => a.wrapping_add(imm as u32),
                    AluIOp::Andi => a & imm as u32,
                    AluIOp::Ori => a | imm as u32,
                    AluIOp::Xori => a ^ imm as u32,
                    AluIOp::Slti => ((a as i32) < imm) as u32,
                    AluIOp::Sltiu => (a < imm as u32) as u32,
                    AluIOp::Sll => a.wrapping_shl(imm as u32 & 31),
                    AluIOp::Srl => a.wrapping_shr(imm as u32 & 31),
                    AluIOp::Sra => ((a as i32).wrapping_shr(imm as u32 & 31)) as u32,
                };
                state.set(rd, v);
            }
            RInsn::Lui { rd, imm } => state.set(rd, imm << 16),
            RInsn::Ext { rd, rs, pos, len } => {
                let mask = if len >= 32 {
                    u32::MAX
                } else {
                    (1u32 << len) - 1
                };
                state.set(rd, (state.get(rs) >> pos) & mask);
            }
            RInsn::Ins { rd, rs, pos, len } => {
                let mask = if len >= 32 {
                    u32::MAX
                } else {
                    (1u32 << len) - 1
                };
                let cleared = state.get(rd) & !(mask << pos);
                state.set(rd, cleared | ((state.get(rs) & mask) << pos));
            }
            RInsn::Load { op, rd, base, off } => {
                let addr = state.get(base).wrapping_add(off as u32);
                match port.load(addr, op) {
                    Ok((v, stall)) => {
                        cycles += stall;
                        stalls += stall;
                        state.set(rd, op.extend(v));
                    }
                    Err(f) => {
                        return RunOutcome {
                            exit: BlockExit::Fault(f),
                            cycles,
                            insns,
                            stall_cycles: stalls,
                            guards_passed: guards,
                        }
                    }
                }
            }
            RInsn::Store { op, src, base, off } => {
                let addr = state.get(base).wrapping_add(off as u32);
                match port.store(addr, state.get(src), op) {
                    Ok(stall) => {
                        cycles += stall;
                        stalls += stall;
                    }
                    Err(f) => {
                        return RunOutcome {
                            exit: BlockExit::Fault(f),
                            cycles,
                            insns,
                            stall_cycles: stalls,
                            guards_passed: guards,
                        }
                    }
                }
            }
            RInsn::Branch {
                cond,
                rs,
                rt,
                target,
            } => {
                if cond.holds(state.get(rs), state.get(rt)) {
                    cycles += TAKEN_BRANCH_PENALTY;
                    match target {
                        BranchTarget::Local(idx) => pc = idx,
                        BranchTarget::Guest(g) => {
                            return RunOutcome {
                                exit: BlockExit::Goto(g),
                                cycles,
                                insns,
                                stall_cycles: stalls,
                                guards_passed: guards,
                            }
                        }
                    }
                }
            }
            RInsn::Jump { target } => {
                cycles += TAKEN_BRANCH_PENALTY;
                match target {
                    BranchTarget::Local(idx) => pc = idx,
                    BranchTarget::Guest(g) => {
                        return RunOutcome {
                            exit: BlockExit::Goto(g),
                            cycles,
                            insns,
                            stall_cycles: stalls,
                            guards_passed: guards,
                        }
                    }
                }
            }
            RInsn::Helper { kind } => {
                if let Err(f) = port.helper(kind, state) {
                    return RunOutcome {
                        exit: BlockExit::Fault(f),
                        cycles,
                        insns,
                        stall_cycles: stalls,
                        guards_passed: guards,
                    };
                }
            }
            RInsn::Dispatch { rs } => {
                return RunOutcome {
                    exit: BlockExit::Indirect(state.get(rs)),
                    cycles,
                    insns,
                    stall_cycles: stalls,
                    guards_passed: guards,
                }
            }
            RInsn::Sys => {
                return RunOutcome {
                    exit: BlockExit::Sys,
                    cycles,
                    insns,
                    stall_cycles: stalls,
                    guards_passed: guards,
                }
            }
            RInsn::Trap { cause } => {
                return RunOutcome {
                    exit: BlockExit::Fault(cause.into()),
                    cycles,
                    insns,
                    stall_cycles: stalls,
                    guards_passed: guards,
                }
            }
            RInsn::Hlt => {
                return RunOutcome {
                    exit: BlockExit::Halt,
                    cycles,
                    insns,
                    stall_cycles: stalls,
                    guards_passed: guards,
                }
            }
            RInsn::SmcGuard { resume } => {
                if port.smc_pending() {
                    return RunOutcome {
                        exit: BlockExit::Goto(resume),
                        cycles,
                        insns,
                        stall_cycles: stalls,
                        guards_passed: guards,
                    };
                }
                guards += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A flat test memory with a constant per-access stall.
    struct TestPort {
        mem: std::collections::HashMap<u32, u8>,
        stall: u64,
    }

    impl TestPort {
        fn new(stall: u64) -> Self {
            TestPort {
                mem: std::collections::HashMap::new(),
                stall,
            }
        }
    }

    impl DataPort for TestPort {
        fn load(&mut self, addr: u32, op: MemOp) -> Result<(u32, u64), Fault> {
            let mut v = 0u32;
            for i in (0..op.bytes()).rev() {
                v = (v << 8) | *self.mem.get(&(addr + i)).unwrap_or(&0) as u32;
            }
            Ok((v, self.stall))
        }

        fn store(&mut self, addr: u32, value: u32, op: MemOp) -> Result<u64, Fault> {
            for i in 0..op.bytes() {
                self.mem.insert(addr + i, (value >> (8 * i)) as u8);
            }
            Ok(self.stall)
        }
    }

    fn r(n: u8) -> RReg {
        RReg(n)
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut s = CoreState::new();
        let code = [
            RInsn::AluI {
                op: AluIOp::Addi,
                rd: r(1),
                rs: r(0),
                imm: 6,
            },
            RInsn::AluI {
                op: AluIOp::Addi,
                rd: r(2),
                rs: r(0),
                imm: 7,
            },
            RInsn::Alu {
                op: AluOp::Mul,
                rd: r(3),
                rs: r(1),
                rt: r(2),
            },
            RInsn::Hlt,
        ];
        let out = run_block(&mut s, &code, &mut TestPort::new(0), 100);
        assert_eq!(out.exit, BlockExit::Halt);
        assert_eq!(s.get(r(3)), 42);
        assert_eq!(out.insns, 4);
        // 1 + 1 + 2 (mul) + 1.
        assert_eq!(out.cycles, 5);
    }

    #[test]
    fn local_branch_loops() {
        // r1 = 5; loop: r2 += r1; r1 -= 1; bne r1, r0, loop; hlt
        let code = [
            RInsn::AluI {
                op: AluIOp::Addi,
                rd: r(1),
                rs: r(0),
                imm: 5,
            },
            RInsn::Alu {
                op: AluOp::Add,
                rd: r(2),
                rs: r(2),
                rt: r(1),
            },
            RInsn::AluI {
                op: AluIOp::Addi,
                rd: r(1),
                rs: r(1),
                imm: -1,
            },
            RInsn::Branch {
                cond: BrCond::Ne,
                rs: r(1),
                rt: r(0),
                target: BranchTarget::Local(1),
            },
            RInsn::Hlt,
        ];
        let mut s = CoreState::new();
        let out = run_block(&mut s, &code, &mut TestPort::new(0), 100);
        assert_eq!(out.exit, BlockExit::Halt);
        assert_eq!(s.get(r(2)), 15);
    }

    #[test]
    fn guest_exit_and_dispatch() {
        let code = [RInsn::Jump {
            target: BranchTarget::Guest(0x8000_0010),
        }];
        let mut s = CoreState::new();
        let out = run_block(&mut s, &code, &mut TestPort::new(0), 10);
        assert_eq!(out.exit, BlockExit::Goto(0x8000_0010));

        let code = [
            RInsn::AluI {
                op: AluIOp::Addi,
                rd: r(4),
                rs: r(0),
                imm: 0x1234,
            },
            RInsn::Dispatch { rs: r(4) },
        ];
        let mut s = CoreState::new();
        let out = run_block(&mut s, &code, &mut TestPort::new(0), 10);
        assert_eq!(out.exit, BlockExit::Indirect(0x1234));
    }

    #[test]
    fn memory_stalls_counted() {
        let code = [
            RInsn::AluI {
                op: AluIOp::Addi,
                rd: r(1),
                rs: r(0),
                imm: 0x100,
            },
            RInsn::Store {
                op: MemOp::W,
                src: r(1),
                base: r(1),
                off: 0,
            },
            RInsn::Load {
                op: MemOp::W,
                rd: r(2),
                base: r(1),
                off: 0,
            },
            RInsn::Hlt,
        ];
        let mut s = CoreState::new();
        let out = run_block(&mut s, &code, &mut TestPort::new(4), 10);
        assert_eq!(s.get(r(2)), 0x100);
        // 4 issue cycles + 2 accesses × 4 stall.
        assert_eq!(out.cycles, 12);
        assert_eq!(out.stall_cycles, 8, "stall share reported separately");
    }

    #[test]
    fn load_extension_variants() {
        let mut port = TestPort::new(0);
        port.store(0x10, 0x80, MemOp::B).unwrap();
        let code = [
            RInsn::AluI {
                op: AluIOp::Addi,
                rd: r(1),
                rs: r(0),
                imm: 0x10,
            },
            RInsn::Load {
                op: MemOp::B,
                rd: r(2),
                base: r(1),
                off: 0,
            },
            RInsn::Load {
                op: MemOp::Bu,
                rd: r(3),
                base: r(1),
                off: 0,
            },
            RInsn::Hlt,
        ];
        let mut s = CoreState::new();
        run_block(&mut s, &code, &mut port, 10);
        assert_eq!(s.get(r(2)), 0xFFFF_FF80);
        assert_eq!(s.get(r(3)), 0x80);
    }

    #[test]
    fn ext_ins_bitfields() {
        let code = [
            RInsn::AluI {
                op: AluIOp::Addi,
                rd: r(1),
                rs: r(0),
                imm: 0b1011_0100,
            },
            RInsn::Ext {
                rd: r(2),
                rs: r(1),
                pos: 4,
                len: 4,
            }, // 0b1011
            RInsn::AluI {
                op: AluIOp::Addi,
                rd: r(3),
                rs: r(0),
                imm: 1,
            },
            RInsn::Ins {
                rd: r(1),
                rs: r(3),
                pos: 0,
                len: 2,
            }, // low 2 bits := 01
            RInsn::Hlt,
        ];
        let mut s = CoreState::new();
        run_block(&mut s, &code, &mut TestPort::new(0), 10);
        assert_eq!(s.get(r(2)), 0b1011);
        assert_eq!(s.get(r(1)), 0b1011_0101);
    }

    #[test]
    fn div_zero_faults() {
        let code = [
            RInsn::Alu {
                op: AluOp::Divu,
                rd: r(1),
                rs: r(1),
                rt: r(0),
            },
            RInsn::Hlt,
        ];
        let mut s = CoreState::new();
        let out = run_block(&mut s, &code, &mut TestPort::new(0), 10);
        assert_eq!(out.exit, BlockExit::Fault(Fault::DivZero));
    }

    #[test]
    fn fuel_limit_stops_runaway() {
        let code = [RInsn::Jump {
            target: BranchTarget::Local(0),
        }];
        let mut s = CoreState::new();
        let out = run_block(&mut s, &code, &mut TestPort::new(0), 50);
        assert_eq!(out.exit, BlockExit::Fault(Fault::FuelExhausted));
        assert_eq!(out.insns, 50);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let code = [
            RInsn::AluI {
                op: AluIOp::Addi,
                rd: r(0),
                rs: r(0),
                imm: 99,
            },
            RInsn::Hlt,
        ];
        let mut s = CoreState::new();
        run_block(&mut s, &code, &mut TestPort::new(0), 10);
        assert_eq!(s.get(r(0)), 0);
    }

    #[test]
    fn lui_ori_builds_constant() {
        let code = [
            RInsn::Lui {
                rd: r(1),
                imm: 0xDEAD,
            },
            RInsn::AluI {
                op: AluIOp::Ori,
                rd: r(1),
                rs: r(1),
                imm: 0xBEEF,
            },
            RInsn::Hlt,
        ];
        let mut s = CoreState::new();
        run_block(&mut s, &code, &mut TestPort::new(0), 10);
        assert_eq!(s.get(r(1)), 0xDEAD_BEEF);
    }

    #[test]
    fn taken_branch_penalty_charged() {
        let taken = [
            RInsn::Branch {
                cond: BrCond::Eq,
                rs: r(0),
                rt: r(0),
                target: BranchTarget::Local(1),
            },
            RInsn::Hlt,
        ];
        let not_taken = [
            RInsn::Branch {
                cond: BrCond::Ne,
                rs: r(0),
                rt: r(0),
                target: BranchTarget::Local(1),
            },
            RInsn::Hlt,
        ];
        let mut s = CoreState::new();
        let a = run_block(&mut s, &taken, &mut TestPort::new(0), 10);
        let b = run_block(&mut s, &not_taken, &mut TestPort::new(0), 10);
        assert_eq!(a.cycles, b.cycles + TAKEN_BRANCH_PENALTY);
    }
}
