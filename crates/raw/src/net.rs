//! The dynamic on-chip network.
//!
//! Raw's dynamic networks are dimension-ordered wormhole-routed meshes with
//! one-cycle-per-hop wire delay. The model here charges
//! `inject + hops + payload serialization + eject` per message, keeps
//! per-(source, destination) ordering, and serializes delivery at each
//! destination port — so a shared resource like the L2 code-cache manager
//! tile becomes a genuine queueing bottleneck when many translation slaves
//! hammer it (the congestion the paper observes on vpr/gcc/crafty, §4.3).

use std::collections::HashMap;

use vta_sim::{Cycle, EventQueue};

use crate::grid::TileId;

/// Cycles to inject a message header into the network.
pub const INJECT_COST: u64 = 1;
/// Cycles per network hop.
pub const HOP_COST: u64 = 1;
/// Cycles to eject a message at the destination.
pub const EJECT_COST: u64 = 1;

/// A dynamic network carrying typed messages between tiles.
///
/// # Examples
///
/// ```
/// use vta_raw::{Network, TileId};
/// use vta_sim::Cycle;
///
/// let mut net = Network::new(4, 4);
/// let t0 = TileId::new(0, 0);
/// let t1 = TileId::new(1, 0);
/// let arrive = net.send(Cycle(0), t0, t1, 1, 7u32);
/// assert_eq!(net.recv(t1, Cycle(0)), None);
/// assert_eq!(net.recv(t1, arrive), Some(7));
/// ```
#[derive(Debug, Clone)]
pub struct Network<T> {
    width: u8,
    height: u8,
    inboxes: HashMap<TileId, EventQueue<T>>,
    /// Per-destination port: when the ejection port is next free.
    port_free: HashMap<TileId, Cycle>,
    /// Per (src,dst) pair: last arrival, to preserve point-to-point order.
    pair_last: HashMap<(TileId, TileId), Cycle>,
    messages: u64,
    total_hops: u64,
}

impl<T> Network<T> {
    /// Creates the network for a `width`×`height` grid.
    pub fn new(width: u8, height: u8) -> Self {
        Network {
            width,
            height,
            inboxes: HashMap::new(),
            port_free: HashMap::new(),
            pair_last: HashMap::new(),
            messages: 0,
            total_hops: 0,
        }
    }

    /// Sends `payload` of `words` 32-bit words from `from` to `to` at
    /// `now`; returns the arrival cycle.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the grid.
    pub fn send(&mut self, now: Cycle, from: TileId, to: TileId, words: u32, payload: T) -> Cycle {
        let arrival = self.route(now, from, to, words);
        self.inboxes
            .entry(to)
            .or_default()
            .schedule(arrival, payload);
        arrival
    }

    /// Like [`send`], but also records the message in `tracer`.
    ///
    /// [`send`]: Network::send
    pub fn send_traced(
        &mut self,
        now: Cycle,
        from: TileId,
        to: TileId,
        words: u32,
        payload: T,
        tracer: &mut vta_sim::Tracer,
    ) -> Cycle {
        let arrival = self.send(now, from, to, words, payload);
        tracer.net_msg(
            now,
            arrival - now,
            from.into(),
            to.into(),
            words,
            from.hops_to(to) as u8,
        );
        arrival
    }

    /// Computes the arrival time of a message *without* enqueueing a
    /// payload — for synchronous request/reply modelling where the caller
    /// blocks on the result anyway. Contention state (ejection ports,
    /// point-to-point ordering) is updated exactly as for [`send`], but no
    /// message is ever scheduled, so pending payloads from earlier `send`s
    /// are untouched.
    ///
    /// [`send`]: Network::send
    pub fn latency(&mut self, now: Cycle, from: TileId, to: TileId, words: u32) -> Cycle {
        self.route(now, from, to, words)
    }

    /// Shared contention bookkeeping for [`send`]/[`latency`]: computes the
    /// arrival cycle and updates port/ordering state, without touching any
    /// inbox.
    ///
    /// [`send`]: Network::send
    /// [`latency`]: Network::latency
    fn route(&mut self, now: Cycle, from: TileId, to: TileId, words: u32) -> Cycle {
        assert!(
            from.x < self.width && from.y < self.height,
            "bad src {from}"
        );
        assert!(to.x < self.width && to.y < self.height, "bad dst {to}");
        let hops = from.hops_to(to) as u64;
        self.messages += 1;
        self.total_hops += hops;

        let wire = INJECT_COST + hops * HOP_COST + words as u64 + EJECT_COST;
        let mut arrival = now + wire;
        // Point-to-point ordering.
        if let Some(&last) = self.pair_last.get(&(from, to)) {
            arrival = arrival.max(last + 1);
        }
        // Destination ejection port serializes message delivery: each
        // message occupies the port for its payload length.
        let free = self.port_free.get(&to).copied().unwrap_or(Cycle::ZERO);
        arrival = arrival.max(free);
        self.port_free.insert(to, arrival + words.max(1) as u64);
        self.pair_last.insert((from, to), arrival);
        arrival
    }

    /// Delivers the earliest message for `at` whose arrival is `<= now`.
    pub fn recv(&mut self, at: TileId, now: Cycle) -> Option<T> {
        self.inboxes.get_mut(&at)?.pop_ready(now)
    }

    /// Arrival cycle of the earliest undelivered message for `at`.
    pub fn next_arrival(&self, at: TileId) -> Option<Cycle> {
        self.inboxes.get(&at)?.next_due()
    }

    /// Number of undelivered messages for `at`.
    pub fn pending(&self, at: TileId) -> usize {
        self.inboxes.get(&at).map_or(0, EventQueue::len)
    }

    /// `(messages sent, total hops traversed)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.messages, self.total_hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: u8, y: u8) -> TileId {
        TileId::new(x, y)
    }

    #[test]
    fn latency_scales_with_distance() {
        let mut net = Network::new(4, 4);
        let near = net.send(Cycle(0), t(0, 0), t(1, 0), 1, ());
        let mut net2 = Network::new(4, 4);
        let far = net2.send(Cycle(0), t(0, 0), t(3, 3), 1, ());
        assert!(far > near, "more hops, later arrival");
        assert_eq!(near, Cycle(INJECT_COST + 1 + 1 + EJECT_COST));
        assert_eq!(far, Cycle(INJECT_COST + 6 + 1 + EJECT_COST));
    }

    #[test]
    fn destination_port_contention_queues() {
        let mut net = Network::new(4, 4);
        let dst = t(2, 2);
        let a = net.send(Cycle(0), t(0, 0), dst, 4, 1u32);
        let b = net.send(Cycle(0), t(3, 3), dst, 4, 2u32);
        assert!(b > a, "second message waits on the ejection port");
        assert!(b - a >= 4, "port busy for the payload length");
    }

    #[test]
    fn point_to_point_order_preserved() {
        let mut net = Network::new(4, 4);
        let (s, d) = (t(0, 0), t(3, 0));
        let a = net.send(Cycle(0), s, d, 1, 'a');
        let b = net.send(Cycle(1), s, d, 1, 'b');
        assert!(b > a);
        assert_eq!(net.recv(d, b), Some('a'));
        assert_eq!(net.recv(d, b), Some('b'));
    }

    #[test]
    fn recv_respects_arrival_time() {
        let mut net = Network::new(4, 4);
        let arrive = net.send(Cycle(10), t(0, 0), t(0, 1), 1, 9u8);
        assert_eq!(net.recv(t(0, 1), Cycle(10)), None);
        assert_eq!(net.next_arrival(t(0, 1)), Some(arrive));
        assert_eq!(net.recv(t(0, 1), arrive), Some(9));
        assert_eq!(net.pending(t(0, 1)), 0);
    }

    #[test]
    #[should_panic(expected = "bad dst")]
    fn out_of_grid_panics() {
        let mut net = Network::new(4, 4);
        net.send(Cycle(0), t(0, 0), t(7, 0), 1, ());
    }

    #[test]
    fn latency_matches_send_without_payload() {
        let mut a: Network<()> = Network::new(4, 4);
        let mut b: Network<()> = Network::new(4, 4);
        let t_a = a.latency(Cycle(5), t(0, 0), t(3, 1), 2);
        let t_b = b.send(Cycle(5), t(0, 0), t(3, 1), 2, ());
        assert_eq!(t_a, t_b, "latency() mirrors send() timing");
        assert_eq!(a.pending(t(3, 1)), 0, "latency() leaves no payload");
    }

    /// Regression test for the ghost-message bug: `latency` used to enqueue
    /// a `T::default()` placeholder and then `pop_ready(arrival)` it — but
    /// `pop_ready` pops the *earliest* due message, so a real pending
    /// payload on the same destination was silently swallowed and the
    /// placeholder delivered in its place.
    #[test]
    fn latency_does_not_drop_pending_payloads() {
        let mut net: Network<u32> = Network::new(4, 4);
        let dst = t(3, 0);
        let arrive = net.send(Cycle(0), t(0, 0), dst, 1, 7);
        // Synchronous probe to the same destination while the real payload
        // is still in flight (its arrival is later, so pop_ready(arrival)
        // on the old code popped the real message).
        let probe = net.latency(Cycle(0), t(1, 0), dst, 1);
        assert!(
            probe >= arrive,
            "probe queues behind the payload's port use"
        );
        assert_eq!(net.pending(dst), 1, "the real payload is still pending");
        assert_eq!(
            net.recv(dst, probe.max(arrive)),
            Some(7),
            "the delivered message is the real payload, not a placeholder"
        );
        assert_eq!(net.recv(dst, probe + 100), None, "and no ghost follows");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn send_traced_records_message() {
        let mut net: Network<u8> = Network::new(4, 4);
        let mut tr = vta_sim::Tracer::new(vta_sim::TraceConfig::default());
        let arrive = net.send_traced(Cycle(2), t(0, 0), t(2, 1), 3, 5, &mut tr);
        let links: Vec<_> = tr.links().collect();
        assert_eq!(links.len(), 1);
        let (src, dst, st) = links[0];
        assert_eq!((src.x, src.y), (0, 0));
        assert_eq!((dst.x, dst.y), (2, 1));
        assert_eq!((st.msgs, st.words), (1, 3));
        match tr.events().next() {
            Some(&vta_sim::TraceEvent::NetMsg { ts, dur, hops, .. }) => {
                assert_eq!(ts, 2);
                assert_eq!(dur, (arrive - Cycle(2)));
                assert_eq!(hops, 3);
            }
            other => panic!("expected NetMsg, got {other:?}"),
        }
        // Timing is identical to an untraced send.
        let mut plain: Network<u8> = Network::new(4, 4);
        assert_eq!(plain.send(Cycle(2), t(0, 0), t(2, 1), 3, 5), arrive);
    }

    #[test]
    fn stats_accumulate() {
        let mut net = Network::new(4, 4);
        net.send(Cycle(0), t(0, 0), t(1, 0), 1, ());
        net.send(Cycle(0), t(0, 0), t(3, 3), 1, ());
        assert_eq!(net.stats(), (2, 7));
    }
}
