//! Set-associative cache model (tags only — data lives elsewhere).
//!
//! Used for the execution tile's 32 KiB hardware data cache, for the L2
//! data-cache bank tiles (each bank tile contributes its own 32 KiB of
//! SRAM, which is why trading cache tiles for translator tiles changes L2
//! capacity — the knob Figures 9/10 turn), and for the MMU tile's TLB.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Associativity.
    pub ways: u32,
}

impl CacheConfig {
    /// A Raw tile's 32 KiB, 2-way, 32-byte-line data cache.
    pub const RAW_L1D: CacheConfig = CacheConfig {
        size_bytes: 32 * 1024,
        line_bytes: 32,
        ways: 2,
    };

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.ways)
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was resident.
    Hit,
    /// The line was not resident; it has now been filled. If a dirty line
    /// was evicted to make room, its base address is reported for
    /// write-back accounting.
    Miss {
        /// Base address of the evicted dirty line, if any.
        writeback: Option<u64>,
    },
}

impl Access {
    /// Whether this access hit.
    pub fn is_hit(self) -> bool {
        matches!(self, Access::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

/// An LRU set-associative cache (tag array only).
///
/// # Examples
///
/// ```
/// use vta_raw::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size_bytes: 128, line_bytes: 32, ways: 2 });
/// assert!(!c.access(0x40, false).is_hit());
/// assert!(c.access(0x44, false).is_hit()); // same line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    line_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two split.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be 2^n");
        let sets = cfg.sets();
        assert!(sets.is_power_of_two() && sets > 0, "set count must be 2^n");
        Cache {
            cfg,
            lines: vec![Line::default(); (sets * cfg.ways) as usize],
            tick: 0,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: (sets - 1) as u64,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses `addr`; fills on miss; marks dirty on writes.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> Access {
        self.tick += 1;
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let ways = self.cfg.ways as usize;
        let slice = &mut self.lines[set * ways..(set + 1) * ways];

        if let Some(line) = slice.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            line.dirty |= write;
            self.hits += 1;
            return Access::Hit;
        }

        self.misses += 1;
        // Choose victim: first invalid way, else LRU.
        let victim = match slice.iter().position(|l| !l.valid) {
            Some(i) => i,
            None => slice
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("nonzero associativity"),
        };
        let evicted = slice[victim];
        let writeback = (evicted.valid && evicted.dirty).then(|| {
            let line_addr = (evicted.tag << self.set_mask.count_ones()) | set as u64;
            line_addr << self.line_shift
        });
        slice[victim] = Line {
            valid: true,
            dirty: write,
            tag,
            lru: self.tick,
        };
        Access::Miss { writeback }
    }

    /// Whether `addr`'s line is resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let ways = self.cfg.ways as usize;
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates everything, returning the number of dirty lines that
    /// would need write-back (the reconfiguration cost morphing pays).
    pub fn flush(&mut self) -> u32 {
        let dirty = self.lines.iter().filter(|l| l.valid && l.dirty).count() as u32;
        for l in &mut self.lines {
            *l = Line::default();
        }
        dirty
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 16B lines = 128B.
        Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            ways: 2,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).is_hit());
        assert!(c.access(0x100, false).is_hit());
        assert!(c.access(0x10F, false).is_hit());
        assert!(!c.access(0x110, false).is_hit());
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets*line = 64).
        c.access(0x000, false);
        c.access(0x040, false);
        c.access(0x000, false); // touch A again; B becomes LRU
        let r = c.access(0x080, false); // evicts B
        assert!(!r.is_hit());
        assert!(c.access(0x000, false).is_hit(), "A must survive");
        assert!(!c.access(0x040, false).is_hit(), "B was evicted");
    }

    #[test]
    fn dirty_writeback_reported() {
        let mut c = tiny();
        c.access(0x000, true); // dirty A
        c.access(0x040, false);
        match c.access(0x080, false) {
            Access::Miss { writeback } => assert_eq!(writeback, Some(0x000)),
            Access::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x040, false);
        match c.access(0x080, false) {
            Access::Miss { writeback } => assert_eq!(writeback, None),
            Access::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn flush_counts_dirty_lines() {
        let mut c = tiny();
        c.access(0x00, true); // set 0, dirty
        c.access(0x10, true); // set 1, dirty
        c.access(0x20, false); // set 2, clean
        assert_eq!(c.flush(), 2);
        assert!(!c.access(0x00, false).is_hit(), "flush invalidates");
    }

    #[test]
    fn probe_does_not_fill() {
        let mut c = tiny();
        assert!(!c.probe(0x123));
        c.access(0x123, false);
        assert!(c.probe(0x123));
    }

    #[test]
    fn stats_track_accesses() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        assert_eq!(c.stats(), (1, 2));
    }

    #[test]
    fn raw_l1d_geometry() {
        let c = Cache::new(CacheConfig::RAW_L1D);
        assert_eq!(c.config().sets(), 512);
    }
}
