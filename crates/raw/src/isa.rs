//! The host tile instruction set ("RawIsa").
//!
//! A MIPS-derived 32-bit RISC ISA as on a Raw tile, plus the two bit-field
//! operations (`ext`/`ins`) the paper's emulator leans on to keep the x86
//! flags packed in one register, and two pseudo-terminators that model the
//! tile's interaction with the DBT runtime: [`RInsn::Dispatch`] (leave the
//! code cache and look up the next guest address) and [`RInsn::Sys`]
//! (proxy a guest system call to the syscall tile).
//!
//! Every instruction occupies one 32-bit word of the tile's
//! software-managed instruction memory; [`RInsn::SIZE_BYTES`] is what the
//! L1 code cache accounting uses.

/// A host register. `r0` is hardwired to zero, as on MIPS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RReg(pub u8);

/// Number of architected host registers per tile.
pub const NUM_REGS: usize = 32;

/// The zero register.
pub const R0: RReg = RReg(0);

impl std::fmt::Display for RReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Three-register ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Nor,
    /// Set if signed less-than.
    Slt,
    /// Set if unsigned less-than.
    Sltu,
    /// Shift left by register amount (low 5 bits).
    Sllv,
    Srlv,
    Srav,
    /// Low 32 bits of the product (single-cycle on Raw).
    Mul,
    /// High 32 bits of the signed product.
    Mulh,
    /// High 32 bits of the unsigned product.
    Mulhu,
    /// Signed divide (iterative; expensive).
    Div,
    /// Unsigned divide.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

impl AluOp {
    /// Issue cycles for this operation on the 8-stage in-order tile.
    pub fn cycles(self) -> u64 {
        match self {
            AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => 32,
            AluOp::Mul | AluOp::Mulh | AluOp::Mulhu => 2,
            _ => 1,
        }
    }
}

/// Register-immediate ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum AluIOp {
    Addi,
    Andi,
    Ori,
    Xori,
    Slti,
    Sltiu,
    /// Shift left by a constant.
    Sll,
    /// Logical shift right by a constant.
    Srl,
    /// Arithmetic shift right by a constant.
    Sra,
}

/// Memory access widths (with zero/sign extension on loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum MemOp {
    B,
    Bu,
    H,
    Hu,
    W,
}

impl MemOp {
    /// Access width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemOp::B | MemOp::Bu => 1,
            MemOp::H | MemOp::Hu => 2,
            MemOp::W => 4,
        }
    }

    /// Extends a loaded raw value per this op's signedness.
    pub fn extend(self, raw: u32) -> u32 {
        match self {
            MemOp::B => raw as u8 as i8 as i32 as u32,
            MemOp::Bu => raw & 0xFF,
            MemOp::H => raw as u16 as i16 as i32 as u32,
            MemOp::Hu => raw & 0xFFFF,
            MemOp::W => raw,
        }
    }
}

/// Branch conditions (compare two registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BrCond {
    Eq,
    Ne,
    Lt,
    Ge,
    LtU,
    GeU,
}

impl BrCond {
    /// Evaluates the condition on two register values.
    pub fn holds(self, a: u32, b: u32) -> bool {
        match self {
            BrCond::Eq => a == b,
            BrCond::Ne => a != b,
            BrCond::Lt => (a as i32) < b as i32,
            BrCond::Ge => (a as i32) >= b as i32,
            BrCond::LtU => a < b,
            BrCond::GeU => a >= b,
        }
    }
}

/// Where a branch or jump goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchTarget {
    /// An instruction index inside the current translated block.
    Local(usize),
    /// A guest address: a *chainable exit*. If the target block is resident
    /// in the L1 code cache the branch is patched to fall through into it
    /// (chaining); otherwise control returns to the dispatch loop.
    Guest(u32),
}

/// Shift/rotate operations a [`HelperKind::Shift`] helper can perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ShiftOp {
    Shl,
    Shr,
    Sar,
    Rol,
    Ror,
}

/// Out-of-line runtime helper routines ("millicode").
///
/// Real DBTs keep support routines resident next to the dispatch loop for
/// operations too bulky to inline — wide divides and the flag-exact
/// shift/rotate path (x86 leaves all flags untouched when the masked shift
/// count is zero, which inline code would need extra branches to honour).
/// The register ABI is fixed by `vta_ir::apply_helper`, the canonical
/// implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HelperKind {
    /// x86 `div`/`idiv`: divides the widened accumulator by `r24`.
    Div {
        /// Signed divide?
        signed: bool,
        /// Operand width in bytes (1, 2 or 4).
        width: u8,
    },
    /// Flag-exact shift/rotate of `r24` by `r25`, flags in/out via `r9`.
    Shift {
        /// Operation.
        op: ShiftOp,
        /// Operand width in bytes (1, 2 or 4).
        width: u8,
    },
}

impl HelperKind {
    /// Cycle occupancy of the helper call (call + routine + return).
    pub fn cycles(self) -> u64 {
        match self {
            HelperKind::Div { .. } => 45,
            HelperKind::Shift { .. } => 14,
        }
    }
}

/// Why a [`RInsn::Trap`] stops the machine.
///
/// Traps are *statically known* guest faults the translator discovers at
/// translation time and materialises as a terminator, so the translated
/// path reports them with the same precision as the reference
/// interpreter: the guest code before the faulting point still executes
/// (and may fault on its own first).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapCause {
    /// `int` with a vector the virtual machine does not implement.
    BadInterrupt {
        /// The interrupt vector.
        vector: u8,
    },
    /// Guest bytes at `addr` do not decode (unsupported opcode, truncated
    /// instruction, or unmapped code page reached mid-block).
    Undecodable {
        /// Guest address of the undecodable instruction.
        addr: u32,
    },
}

/// One host instruction.
///
/// # Examples
///
/// ```
/// use vta_raw::isa::{AluIOp, RInsn, RReg};
///
/// // r3 = r1 + 4
/// let i = RInsn::AluI { op: AluIOp::Addi, rd: RReg(3), rs: RReg(1), imm: 4 };
/// assert_eq!(i.cycles(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RInsn {
    /// `rd = rs <op> rt`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: RReg,
        /// First source.
        rs: RReg,
        /// Second source.
        rt: RReg,
    },
    /// `rd = rs <op> imm`.
    AluI {
        /// Operation.
        op: AluIOp,
        /// Destination.
        rd: RReg,
        /// Source.
        rs: RReg,
        /// Immediate (full 32-bit constants are built with `Lui`+`Ori`).
        imm: i32,
    },
    /// `rd = imm << 16`.
    Lui {
        /// Destination.
        rd: RReg,
        /// Upper immediate.
        imm: u32,
    },
    /// Guest-memory load through the software-translated memory path.
    Load {
        /// Width/extension.
        op: MemOp,
        /// Destination.
        rd: RReg,
        /// Base register (guest virtual address).
        base: RReg,
        /// Byte offset.
        off: i32,
    },
    /// Guest-memory store through the software-translated memory path.
    Store {
        /// Width.
        op: MemOp,
        /// Value to store.
        src: RReg,
        /// Base register (guest virtual address).
        base: RReg,
        /// Byte offset.
        off: i32,
    },
    /// Conditional branch.
    Branch {
        /// Condition.
        cond: BrCond,
        /// Left operand.
        rs: RReg,
        /// Right operand.
        rt: RReg,
        /// Target.
        target: BranchTarget,
    },
    /// Unconditional jump.
    Jump {
        /// Target.
        target: BranchTarget,
    },
    /// `rd = rs[pos .. pos+len]` (zero-extended bit-field extract).
    Ext {
        /// Destination.
        rd: RReg,
        /// Source.
        rs: RReg,
        /// Starting bit.
        pos: u8,
        /// Field width in bits.
        len: u8,
    },
    /// `rd[pos .. pos+len] = rs` (bit-field insert; other bits kept).
    Ins {
        /// Destination (read-modify-write).
        rd: RReg,
        /// Source of the low `len` bits.
        rs: RReg,
        /// Starting bit.
        pos: u8,
        /// Field width in bits.
        len: u8,
    },
    /// Call an out-of-line runtime helper routine.
    Helper {
        /// Which routine.
        kind: HelperKind,
    },
    /// Leave translated code: the next guest address is in `rs`.
    Dispatch {
        /// Register holding the guest address to continue at.
        rs: RReg,
    },
    /// Proxy a guest system call (registers already hold the x86 state).
    Sys,
    /// Raise a statically known guest fault (see [`TrapCause`]).
    Trap {
        /// Why the machine faults here.
        cause: TrapCause,
    },
    /// Stop the virtual machine.
    Hlt,
    /// No operation.
    Nop,
    /// Superblock member-boundary guard: if the runtime has observed a
    /// store into translated code pages since the block was entered,
    /// leave translated code and continue (via dispatch, against fresh
    /// bytes) at guest address `resume`. Free when no store is pending —
    /// it models the zero-cost invalidation check the runtime's store
    /// path already performs.
    SmcGuard {
        /// Guest address of the next member block.
        resume: u32,
    },
}

impl RInsn {
    /// Bytes of instruction memory one instruction occupies.
    pub const SIZE_BYTES: u32 = 4;

    /// Base issue cycles (memory stalls are added by the memory system).
    pub fn cycles(self) -> u64 {
        match self {
            RInsn::Alu { op, .. } => op.cycles(),
            RInsn::Helper { kind } => kind.cycles(),
            // The guard costs nothing on the common no-SMC path: the
            // runtime's store path pays for invalidation detection.
            RInsn::SmcGuard { .. } => 0,
            // Loads/stores: 1 issue cycle; the software address translation
            // and cache occupancy are charged by the DataPort.
            _ => 1,
        }
    }

    /// Whether this instruction ends straight-line execution.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            RInsn::Dispatch { .. }
                | RInsn::Sys
                | RInsn::Trap { .. }
                | RInsn::Hlt
                | RInsn::Jump {
                    target: BranchTarget::Guest(_)
                }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_costs() {
        assert_eq!(AluOp::Add.cycles(), 1);
        assert_eq!(AluOp::Mul.cycles(), 2);
        assert_eq!(AluOp::Div.cycles(), 32);
    }

    #[test]
    fn memop_extension() {
        assert_eq!(MemOp::B.extend(0x80), 0xFFFF_FF80);
        assert_eq!(MemOp::Bu.extend(0x80), 0x80);
        assert_eq!(MemOp::H.extend(0x8000), 0xFFFF_8000);
        assert_eq!(MemOp::Hu.extend(0x8000), 0x8000);
        assert_eq!(MemOp::W.extend(0xDEAD_BEEF), 0xDEAD_BEEF);
    }

    #[test]
    fn branch_conditions() {
        assert!(BrCond::Lt.holds((-1i32) as u32, 0));
        assert!(!BrCond::LtU.holds((-1i32) as u32, 0));
        assert!(BrCond::GeU.holds(0xFFFF_FFFF, 1));
        assert!(BrCond::Eq.holds(3, 3));
        assert!(BrCond::Ne.holds(3, 4));
        assert!(BrCond::Ge.holds(0, 0));
    }

    #[test]
    fn terminators() {
        assert!(RInsn::Hlt.is_terminator());
        assert!(RInsn::Dispatch { rs: RReg(1) }.is_terminator());
        assert!(RInsn::Jump {
            target: BranchTarget::Guest(0x100)
        }
        .is_terminator());
        assert!(!RInsn::Jump {
            target: BranchTarget::Local(3)
        }
        .is_terminator());
        assert!(!RInsn::Nop.is_terminator());
    }
}
