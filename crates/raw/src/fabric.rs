//! Epoch-parallel partitioning of the tile fabric.
//!
//! The geometry layer for running the grid's tiles on a pool of host
//! workers in lockstep epochs (the MTTCG shape: partition, step
//! independently, exchange at statically known horizons). This module is
//! pure bookkeeping — who owns which tile, how long an epoch may be, and
//! in what order cross-partition messages are applied — so it can be
//! tested exhaustively without a simulator attached.
//!
//! # The epoch-length rule
//!
//! Within an epoch, a worker may step its tiles without observing the
//! other partitions, because no message sent after the epoch started can
//! arrive before it ends: the epoch length is bounded by the **minimum
//! cross-partition message latency**. With dimension-ordered routing and
//! fixed per-hop latency that bound is static — the cheapest message
//! between two partitions is one word over the smallest boundary hop
//! count ([`net::INJECT_COST`] + hops × [`net::HOP_COST`] + 1 payload
//! word + [`net::EJECT_COST`]).
//!
//! Crucially, [`epoch_horizon`] is **worker-count invariant** for column
//! partitions of the same grid: every split puts some pair of adjacent
//! columns in different partitions, and adjacent tiles are one hop
//! apart. The horizon therefore never depends on *how many* partitions
//! the grid was cut into — a precondition for bit-identical simulation
//! at every worker count.
//!
//! # Canonical exchange order
//!
//! At an epoch boundary the partitions' in-flight messages are merged
//! and applied in one total order, chosen so that it does not depend on
//! the racy order workers *delivered* them in:
//! `(cycle, src tile index, dst tile index, sequence)` — see
//! [`ExchangeKey`]. Two workers can finish in any wall-clock order;
//! the merged stream is identical.

use crate::grid::TileId;
use crate::net;

/// One contiguous column stripe of the grid, owned by one worker.
///
/// Column stripes (rather than arbitrary tile sets) keep the partition
/// boundary geometry trivial: the minimum cross-partition hop count is
/// always 1 (adjacent columns), which is what pins [`epoch_horizon`]
/// to a worker-count-invariant value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FabricPartition {
    /// Partition (worker) id, `0..workers`.
    pub id: usize,
    /// First owned column (inclusive).
    pub x0: u8,
    /// One past the last owned column (exclusive).
    pub x1: u8,
}

impl FabricPartition {
    /// Whether this partition owns `tile`.
    pub fn contains(&self, tile: TileId) -> bool {
        self.x0 <= tile.x && tile.x < self.x1
    }

    /// Number of columns in the stripe.
    pub fn width(&self) -> u8 {
        self.x1 - self.x0
    }
}

/// Cuts a `width`-column grid into at most `workers` balanced column
/// stripes (left stripes get the remainder columns). More workers than
/// columns clamp to one column per stripe — the finest partitioning the
/// geometry supports. `workers == 0` is treated as 1.
pub fn partition_columns(width: u8, workers: usize) -> Vec<FabricPartition> {
    let parts = workers.clamp(1, width.max(1) as usize);
    let base = width as usize / parts;
    let extra = width as usize % parts;
    let mut out = Vec::with_capacity(parts);
    let mut x = 0u8;
    for id in 0..parts {
        let w = (base + usize::from(id < extra)) as u8;
        out.push(FabricPartition {
            id,
            x0: x,
            x1: x + w,
        });
        x += w;
    }
    out
}

/// The partition owning `tile`. Panics if the partitions do not cover
/// the tile's column (they always do for [`partition_columns`] output
/// and in-grid tiles).
pub fn owner_of(tile: TileId, parts: &[FabricPartition]) -> usize {
    parts
        .iter()
        .find(|p| p.contains(tile))
        .map(|p| p.id)
        .expect("partitions cover the grid")
}

/// The epoch length in cycles: the minimum latency of any message
/// between two tiles in *different* partitions. `None` for a single
/// partition (no cross-partition messages exist; the epoch is
/// unbounded — the serial case).
///
/// For column stripes the minimum is always a one-word message over one
/// hop between boundary-adjacent tiles, so the value is identical for
/// every `workers >= 2` — the worker-count invariance the determinism
/// story rests on.
pub fn epoch_horizon(parts: &[FabricPartition]) -> Option<u64> {
    if parts.len() < 2 {
        return None;
    }
    // Boundary-adjacent tiles in neighboring stripes are exactly one
    // hop apart; the cheapest message carries one payload word.
    let min_hops = 1u64;
    Some(net::INJECT_COST + min_hops * net::HOP_COST + 1 + net::EJECT_COST)
}

/// The total order cross-partition messages are applied in at an epoch
/// boundary: by send cycle, then source tile index, then destination
/// tile index, then a per-sender sequence number. Every component is
/// simulation-deterministic, so the merged order is too — regardless of
/// the wall-clock order workers delivered their outboxes in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExchangeKey {
    /// Simulated cycle the message was sent at.
    pub cycle: u64,
    /// Source tile index (`TileId::index`).
    pub src: u16,
    /// Destination tile index.
    pub dst: u16,
    /// Tie-breaker for multiple messages on one `(cycle, src, dst)`.
    pub seq: u64,
}

/// An epoch-boundary exchange buffer: messages accumulate in arrival
/// order (racy across workers) and drain in canonical [`ExchangeKey`]
/// order.
#[derive(Debug)]
pub struct EpochExchange<T> {
    msgs: Vec<(ExchangeKey, T)>,
}

impl<T> Default for EpochExchange<T> {
    fn default() -> Self {
        EpochExchange { msgs: Vec::new() }
    }
}

impl<T> EpochExchange<T> {
    /// An empty exchange buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers one in-flight message.
    pub fn push(&mut self, key: ExchangeKey, payload: T) {
        self.msgs.push((key, payload));
    }

    /// Buffered message count.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Takes every buffered message, sorted into canonical order. The
    /// sort key is fully deterministic, so the result is independent of
    /// push order.
    pub fn drain_canonical(&mut self) -> Vec<(ExchangeKey, T)> {
        let mut out = std::mem::take(&mut self.msgs);
        out.sort_by_key(|(k, _)| *k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_and_balance() {
        for width in 1u8..=8 {
            for workers in 1usize..=10 {
                let parts = partition_columns(width, workers);
                assert!(!parts.is_empty());
                assert!(parts.len() <= width as usize, "clamped to columns");
                assert_eq!(parts[0].x0, 0);
                assert_eq!(parts.last().unwrap().x1, width);
                for w in parts.windows(2) {
                    assert_eq!(w[0].x1, w[1].x0, "contiguous stripes");
                }
                let widths: Vec<u8> = parts.iter().map(FabricPartition::width).collect();
                let (min, max) = (*widths.iter().min().unwrap(), *widths.iter().max().unwrap());
                assert!(max - min <= 1, "balanced: {widths:?}");
                assert!(min >= 1, "no empty stripe: {widths:?}");
            }
        }
    }

    #[test]
    fn every_tile_has_exactly_one_owner() {
        let parts = partition_columns(4, 3);
        for t in TileId::all(4, 4) {
            let owners = parts.iter().filter(|p| p.contains(t)).count();
            assert_eq!(owners, 1, "tile {t:?}");
            let _ = owner_of(t, &parts); // must not panic
        }
    }

    #[test]
    fn horizon_is_worker_count_invariant() {
        // The rule the determinism story rests on: every multi-worker
        // split of the same grid yields the same epoch length.
        let two = epoch_horizon(&partition_columns(4, 2)).expect("bounded");
        for workers in 2..=8 {
            assert_eq!(epoch_horizon(&partition_columns(4, workers)), Some(two));
        }
        assert_eq!(epoch_horizon(&partition_columns(4, 1)), None, "serial");
        // And the value is the minimum one-word one-hop message cost.
        assert_eq!(two, net::INJECT_COST + net::HOP_COST + 1 + net::EJECT_COST);
    }

    #[test]
    fn canonical_drain_is_push_order_independent() {
        // Shuffle with a seeded LCG (no external rand dependency) and
        // check every shuffle drains to the same canonical stream.
        let keys: Vec<ExchangeKey> = (0..40)
            .map(|i| ExchangeKey {
                cycle: (i * 7) % 5,
                src: ((i * 3) % 4) as u16,
                dst: ((i * 5) % 4) as u16,
                seq: i,
            })
            .collect();
        let canonical = {
            let mut ex = EpochExchange::new();
            for &k in &keys {
                ex.push(k, k.seq);
            }
            ex.drain_canonical()
        };
        let mut rng = 0x5EEDu64;
        for _ in 0..8 {
            let mut shuffled = keys.clone();
            for i in (1..shuffled.len()).rev() {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (rng >> 33) as usize % (i + 1);
                shuffled.swap(i, j);
            }
            let mut ex = EpochExchange::new();
            for &k in &shuffled {
                ex.push(k, k.seq);
            }
            assert_eq!(ex.drain_canonical(), canonical);
        }
    }

    #[test]
    fn exchange_key_orders_by_cycle_then_src_then_dst_then_seq() {
        let k = |cycle, src, dst, seq| ExchangeKey {
            cycle,
            src,
            dst,
            seq,
        };
        let mut v = vec![
            k(1, 0, 0, 0),
            k(0, 1, 0, 0),
            k(0, 0, 1, 0),
            k(0, 0, 0, 1),
            k(0, 0, 0, 0),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                k(0, 0, 0, 0),
                k(0, 0, 0, 1),
                k(0, 0, 1, 0),
                k(0, 1, 0, 0),
                k(1, 0, 0, 0)
            ]
        );
    }
}
