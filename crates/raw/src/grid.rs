//! Tile grid geometry.
//!
//! The paper's system "explicitly manages on-chip layout and communication
//! distance" (§1) — the placement of the MMU tile next to the execution
//! tile, and of L2 banks near the MMU, is a first-class design decision.
//! Hop counts computed here feed every network-latency calculation.

/// Coordinates of one tile in the grid (column `x`, row `y`).
///
/// # Examples
///
/// ```
/// use vta_raw::TileId;
///
/// let a = TileId::new(0, 0);
/// let b = TileId::new(3, 3);
/// assert_eq!(a.hops_to(b), 6);
/// assert_eq!(a.hops_to(a), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId {
    /// Column (0-based, increasing eastward).
    pub x: u8,
    /// Row (0-based, increasing southward).
    pub y: u8,
}

impl TileId {
    /// Creates a tile coordinate.
    pub fn new(x: u8, y: u8) -> TileId {
        TileId { x, y }
    }

    /// Manhattan distance in network hops (dimension-ordered routing).
    pub fn hops_to(self, other: TileId) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }

    /// Hops from this tile to its nearest off-chip DRAM port.
    ///
    /// Raw's memory controllers sit on the east edge of the die, so the
    /// cost is the distance to column `width-1` plus one hop off-chip.
    pub fn hops_to_dram(self, width: u8) -> u32 {
        (width - 1 - self.x) as u32 + 1
    }

    /// Linear index in row-major order.
    pub fn index(self, width: u8) -> usize {
        self.y as usize * width as usize + self.x as usize
    }

    /// All tiles of a `width`×`height` grid in row-major order.
    pub fn all(width: u8, height: u8) -> impl Iterator<Item = TileId> {
        (0..height).flat_map(move |y| (0..width).map(move |x| TileId::new(x, y)))
    }
}

impl From<TileId> for vta_sim::Coord {
    fn from(t: TileId) -> vta_sim::Coord {
        vta_sim::Coord { x: t.x, y: t.y }
    }
}

impl std::fmt::Display for TileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        assert_eq!(TileId::new(1, 1).hops_to(TileId::new(2, 3)), 3);
        assert_eq!(TileId::new(2, 3).hops_to(TileId::new(1, 1)), 3);
    }

    #[test]
    fn dram_port_is_east() {
        assert_eq!(TileId::new(3, 0).hops_to_dram(4), 1);
        assert_eq!(TileId::new(0, 0).hops_to_dram(4), 4);
    }

    #[test]
    fn row_major_enumeration() {
        let tiles: Vec<TileId> = TileId::all(4, 4).collect();
        assert_eq!(tiles.len(), 16);
        assert_eq!(tiles[0], TileId::new(0, 0));
        assert_eq!(tiles[1], TileId::new(1, 0));
        assert_eq!(tiles[15], TileId::new(3, 3));
        for (i, t) in tiles.iter().enumerate() {
            assert_eq!(t.index(4), i);
        }
    }
}
