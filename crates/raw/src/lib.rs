//! # vta-raw — a Raw-like tiled processor substrate
//!
//! The host side of the CGO 2006 reproduction: a cycle-accounted model of
//! the MIT Raw prototype the paper runs on. Raw is a 4×4 grid of identical
//! MIPS-like 32-bit in-order tiles joined by register-mapped on-chip
//! networks; each tile has a 32 KiB hardware data cache and 32 KiB of
//! *software-managed* instruction memory, there is no MMU, no memory
//! protection, and no cache coherence — exactly the gaps the paper's
//! all-software translator has to bridge.
//!
//! This crate provides the mechanical pieces the DBT system in `vta-dbt`
//! assembles: the [`TileId`] grid geometry ([`grid`]), the host instruction
//! set [`RInsn`] ([`isa`]), a set-associative [`Cache`] model, a
//! dimension-ordered dynamic [`Network`] with per-hop wire delay, a
//! [`Dram`] controller model, and the translated-block executor
//! ([`exec::run_block`]).
//!
//! # Examples
//!
//! ```
//! use vta_raw::{grid::TileId, net::Network};
//! use vta_sim::Cycle;
//!
//! let mut net: Network<&str> = Network::new(4, 4);
//! let from = TileId::new(0, 0);
//! let to = TileId::new(3, 2);
//! assert_eq!(from.hops_to(to), 5);
//! let arrival = net.send(Cycle(100), from, to, 2, "request");
//! assert!(arrival > Cycle(100));
//! assert_eq!(net.recv(to, arrival), Some("request"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod exec;
pub mod fabric;
pub mod grid;
pub mod isa;
pub mod net;

pub use cache::{Access, Cache, CacheConfig};
pub use dram::Dram;
pub use exec::{run_block, BlockExit, CoreState, DataPort, Fault};
pub use grid::TileId;
pub use isa::{AluIOp, AluOp, BrCond, BranchTarget, HelperKind, MemOp, RInsn, RReg, ShiftOp};
pub use net::Network;
