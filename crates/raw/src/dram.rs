//! Off-chip DRAM model: fixed access latency plus bandwidth occupancy.

use vta_sim::Cycle;

/// A single DRAM channel shared by all tiles (Raw's off-chip memory).
///
/// Requests pay a fixed access latency and serialize on the channel at a
/// per-word transfer occupancy, so heavy traffic (e.g. every translation
/// slave writing blocks into the L2 code cache) sees queueing delay.
///
/// # Examples
///
/// ```
/// use vta_raw::Dram;
/// use vta_sim::Cycle;
///
/// let mut dram = Dram::new(60, 1);
/// let a = dram.access(Cycle(0), 8);
/// let b = dram.access(Cycle(0), 8);
/// assert!(b > a, "second request queues behind the first");
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    latency: u64,
    word_occupancy: u64,
    next_free: Cycle,
    accesses: u64,
    busy_cycles: u64,
}

impl Dram {
    /// Creates a channel with the given access latency (cycles) and
    /// per-word transfer occupancy.
    pub fn new(latency: u64, word_occupancy: u64) -> Dram {
        Dram {
            latency,
            word_occupancy,
            next_free: Cycle::ZERO,
            accesses: 0,
            busy_cycles: 0,
        }
    }

    /// Issues an access of `words` 32-bit words at `now`; returns the
    /// completion cycle.
    pub fn access(&mut self, now: Cycle, words: u32) -> Cycle {
        self.accesses += 1;
        let start = now.max(self.next_free);
        let transfer = self.word_occupancy * words as u64;
        let done = start + self.latency + transfer;
        self.next_free = start + transfer.max(1);
        self.busy_cycles += transfer.max(1);
        done
    }

    /// Like [`Dram::access`], but also records a span covering the
    /// channel-occupancy window on `track` in `tracer`.
    pub fn access_traced(
        &mut self,
        now: Cycle,
        words: u32,
        tracer: &mut vta_sim::Tracer,
        track: vta_sim::TrackId,
        name: &'static str,
    ) -> Cycle {
        let start = now.max(self.next_free);
        let done = self.access(now, words);
        let occupancy = (self.word_occupancy * words as u64).max(1);
        tracer.span(start, occupancy, track, name);
        done
    }

    /// Raw access latency (no queueing).
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Total accesses issued.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Cycles the channel spent transferring data.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_applied() {
        let mut d = Dram::new(60, 1);
        assert_eq!(d.access(Cycle(100), 8), Cycle(100 + 60 + 8));
    }

    #[test]
    fn channel_serializes() {
        let mut d = Dram::new(60, 1);
        let first = d.access(Cycle(0), 8);
        let second = d.access(Cycle(0), 8);
        assert_eq!(first, Cycle(68));
        assert_eq!(second, Cycle(8 + 68));
    }

    #[test]
    fn idle_channel_no_queueing() {
        let mut d = Dram::new(60, 1);
        d.access(Cycle(0), 8);
        let late = d.access(Cycle(1000), 8);
        assert_eq!(late, Cycle(1068));
    }

    #[test]
    fn counters() {
        let mut d = Dram::new(10, 2);
        d.access(Cycle(0), 4);
        d.access(Cycle(0), 4);
        assert_eq!(d.accesses(), 2);
        assert_eq!(d.busy_cycles(), 16);
    }
}
