use std::collections::BTreeMap;
use std::fmt;

/// The interned counters every simulated component bumps on its hot path.
///
/// The execution loop increments several counters per simulated basic
/// block, so the well-known names are interned: each variant indexes a
/// flat `[u64; N]` array inside [`Stats`] and an increment is a single
/// array add. The string-keyed [`Stats`] API still accepts these names
/// (they resolve to the same slots) plus arbitrary ad-hoc names, which
/// land in a fallback map off the hot path.
///
/// Variants are declared in ascending name order so that iteration can
/// merge them with the fallback map without sorting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Ctr {
    /// `chain.taken` — direct branches dispatched through an L1 chain.
    ChainTaken,
    /// `cycles` — total simulated cycles (set once at end of run).
    Cycles,
    /// `dispatch.direct_miss` — direct branches that missed the L1 chain.
    DispatchDirectMiss,
    /// `dispatch.indirect` — indirect branch dispatches.
    DispatchIndirect,
    /// `dispatch.inline_hit` — indirect branches resolved by a block's
    /// inline target-prediction cache (no dispatch round trip).
    DispatchInlineHit,
    /// `exec.blocks` — translated blocks executed.
    ExecBlocks,
    /// `exec.stall_cycles` — execution-tile cycles stalled on data
    /// loads/stores (the memory component of CPI).
    ExecStallCycles,
    /// `guest_insns` — guest instructions retired.
    GuestInsns,
    /// `host_insns` — host instructions executed.
    HostInsns,
    /// `l15.hit` — L1.5 code-cache hits.
    L15Hit,
    /// `l15.miss` — L1.5 code-cache misses.
    L15Miss,
    /// `l1code.flushes` — whole-L1-code-cache flushes.
    L1CodeFlushes,
    /// `l1code.hit` — L1 code-cache hits.
    L1CodeHit,
    /// `l1code.miss` — L1 code-cache misses.
    L1CodeMiss,
    /// `l2code.access` — L2 code-cache (manager) accesses.
    L2CodeAccess,
    /// `l2code.miss` — L2 code-cache misses (demand translations).
    L2CodeMiss,
    /// `mem.dram` — data accesses served by DRAM.
    MemDram,
    /// `mem.l1_hit` — data accesses served by the L1 D-cache.
    MemL1Hit,
    /// `mem.l2_hit` — data accesses served by an L2 bank.
    MemL2Hit,
    /// `mem.tlb_miss` — TLB misses (page-table walks).
    MemTlbMiss,
    /// `morph.reconfigs` — morphing reconfiguration decisions.
    MorphReconfigs,
    /// `morph.to_cache` — translator tiles morphed into cache banks.
    MorphToCache,
    /// `morph.to_translator` — cache banks morphed into translators.
    MorphToTranslator,
    /// `smc.invalidations` — self-modifying-code page invalidations.
    SmcInvalidations,
    /// `spec.pushes` — speculative translation queue pushes.
    SpecPushes,
    /// `superblock.demoted` — regions pinned back to single-block
    /// translation after a re-recorded path also failed to hold.
    SuperblockDemoted,
    /// `superblock.entries` — executions entering a multi-block region.
    SuperblockEntries,
    /// `superblock.promotions` — addresses promoted to region translation
    /// (a loop backedge or a capped region's continuation got hot).
    SuperblockPromotions,
    /// `superblock.side_exits` — region exits through a side exit
    /// (mispredicted internal branch) rather than the region terminator.
    SuperblockSideExits,
    /// `superblock.re_recorded` — regions whose recorded path stopped
    /// holding and entered a second (final) recording pass.
    SuperblockReRecorded,
    /// `superblock.recorded` — regions formed along a runtime-recorded
    /// path (as opposed to the static prediction).
    SuperblockRecorded,
    /// `superblock.smc_exits` — region exits forced by a self-modifying
    /// store observed at a member boundary guard.
    SuperblockSmcExits,
    /// `syscalls` — guest system calls.
    Syscalls,
    /// `translate.blocks` — blocks translated by the slave pool.
    TranslateBlocks,
    /// `translate.busy_cycles` — slave-tile cycles spent translating.
    TranslateBusyCycles,
    /// `translate.committed` — translations committed to the L2 code cache.
    TranslateCommitted,
}

impl Ctr {
    /// Number of interned counters (the size of the flat array).
    pub const COUNT: usize = 36;

    /// Every interned counter, in ascending name order.
    pub const ALL: [Ctr; Ctr::COUNT] = [
        Ctr::ChainTaken,
        Ctr::Cycles,
        Ctr::DispatchDirectMiss,
        Ctr::DispatchIndirect,
        Ctr::DispatchInlineHit,
        Ctr::ExecBlocks,
        Ctr::ExecStallCycles,
        Ctr::GuestInsns,
        Ctr::HostInsns,
        Ctr::L15Hit,
        Ctr::L15Miss,
        Ctr::L1CodeFlushes,
        Ctr::L1CodeHit,
        Ctr::L1CodeMiss,
        Ctr::L2CodeAccess,
        Ctr::L2CodeMiss,
        Ctr::MemDram,
        Ctr::MemL1Hit,
        Ctr::MemL2Hit,
        Ctr::MemTlbMiss,
        Ctr::MorphReconfigs,
        Ctr::MorphToCache,
        Ctr::MorphToTranslator,
        Ctr::SmcInvalidations,
        Ctr::SpecPushes,
        Ctr::SuperblockDemoted,
        Ctr::SuperblockEntries,
        Ctr::SuperblockPromotions,
        Ctr::SuperblockReRecorded,
        Ctr::SuperblockRecorded,
        Ctr::SuperblockSideExits,
        Ctr::SuperblockSmcExits,
        Ctr::Syscalls,
        Ctr::TranslateBlocks,
        Ctr::TranslateBusyCycles,
        Ctr::TranslateCommitted,
    ];

    /// The dotted string name this counter is published under.
    pub const fn name(self) -> &'static str {
        match self {
            Ctr::ChainTaken => "chain.taken",
            Ctr::Cycles => "cycles",
            Ctr::DispatchDirectMiss => "dispatch.direct_miss",
            Ctr::DispatchIndirect => "dispatch.indirect",
            Ctr::DispatchInlineHit => "dispatch.inline_hit",
            Ctr::ExecBlocks => "exec.blocks",
            Ctr::ExecStallCycles => "exec.stall_cycles",
            Ctr::GuestInsns => "guest_insns",
            Ctr::HostInsns => "host_insns",
            Ctr::L15Hit => "l15.hit",
            Ctr::L15Miss => "l15.miss",
            Ctr::L1CodeFlushes => "l1code.flushes",
            Ctr::L1CodeHit => "l1code.hit",
            Ctr::L1CodeMiss => "l1code.miss",
            Ctr::L2CodeAccess => "l2code.access",
            Ctr::L2CodeMiss => "l2code.miss",
            Ctr::MemDram => "mem.dram",
            Ctr::MemL1Hit => "mem.l1_hit",
            Ctr::MemL2Hit => "mem.l2_hit",
            Ctr::MemTlbMiss => "mem.tlb_miss",
            Ctr::MorphReconfigs => "morph.reconfigs",
            Ctr::MorphToCache => "morph.to_cache",
            Ctr::MorphToTranslator => "morph.to_translator",
            Ctr::SmcInvalidations => "smc.invalidations",
            Ctr::SpecPushes => "spec.pushes",
            Ctr::SuperblockDemoted => "superblock.demoted",
            Ctr::SuperblockEntries => "superblock.entries",
            Ctr::SuperblockPromotions => "superblock.promotions",
            Ctr::SuperblockReRecorded => "superblock.re_recorded",
            Ctr::SuperblockRecorded => "superblock.recorded",
            Ctr::SuperblockSideExits => "superblock.side_exits",
            Ctr::SuperblockSmcExits => "superblock.smc_exits",
            Ctr::Syscalls => "syscalls",
            Ctr::TranslateBlocks => "translate.blocks",
            Ctr::TranslateBusyCycles => "translate.busy_cycles",
            Ctr::TranslateCommitted => "translate.committed",
        }
    }

    /// Resolves a string name to its interned counter, if it is one of
    /// the well-known names.
    pub fn from_name(name: &str) -> Option<Ctr> {
        Some(match name {
            "chain.taken" => Ctr::ChainTaken,
            "cycles" => Ctr::Cycles,
            "dispatch.direct_miss" => Ctr::DispatchDirectMiss,
            "dispatch.indirect" => Ctr::DispatchIndirect,
            "dispatch.inline_hit" => Ctr::DispatchInlineHit,
            "exec.blocks" => Ctr::ExecBlocks,
            "exec.stall_cycles" => Ctr::ExecStallCycles,
            "guest_insns" => Ctr::GuestInsns,
            "host_insns" => Ctr::HostInsns,
            "l15.hit" => Ctr::L15Hit,
            "l15.miss" => Ctr::L15Miss,
            "l1code.flushes" => Ctr::L1CodeFlushes,
            "l1code.hit" => Ctr::L1CodeHit,
            "l1code.miss" => Ctr::L1CodeMiss,
            "l2code.access" => Ctr::L2CodeAccess,
            "l2code.miss" => Ctr::L2CodeMiss,
            "mem.dram" => Ctr::MemDram,
            "mem.l1_hit" => Ctr::MemL1Hit,
            "mem.l2_hit" => Ctr::MemL2Hit,
            "mem.tlb_miss" => Ctr::MemTlbMiss,
            "morph.reconfigs" => Ctr::MorphReconfigs,
            "morph.to_cache" => Ctr::MorphToCache,
            "morph.to_translator" => Ctr::MorphToTranslator,
            "smc.invalidations" => Ctr::SmcInvalidations,
            "spec.pushes" => Ctr::SpecPushes,
            "superblock.demoted" => Ctr::SuperblockDemoted,
            "superblock.entries" => Ctr::SuperblockEntries,
            "superblock.promotions" => Ctr::SuperblockPromotions,
            "superblock.re_recorded" => Ctr::SuperblockReRecorded,
            "superblock.recorded" => Ctr::SuperblockRecorded,
            "superblock.side_exits" => Ctr::SuperblockSideExits,
            "superblock.smc_exits" => Ctr::SuperblockSmcExits,
            "syscalls" => Ctr::Syscalls,
            "translate.blocks" => Ctr::TranslateBlocks,
            "translate.busy_cycles" => Ctr::TranslateBusyCycles,
            "translate.committed" => Ctr::TranslateCommitted,
            _ => return None,
        })
    }
}

/// A registry of named event counters and histograms for one simulation run.
///
/// Every figure in the paper's evaluation is a ratio of two counters
/// (e.g. Figure 6 is `l2code.accesses / cycles`), so components bump
/// counters here and the benchmark harness reads them back by name at the
/// end of a run. Names are dotted paths like `"l2code.miss"`.
///
/// The well-known counters (see [`Ctr`]) live in a flat array and are
/// bumped with [`Stats::bump_ctr`]/[`Stats::add_ctr`] — a single indexed
/// add, suitable for per-block hot paths. The string-keyed API resolves
/// well-known names to the same slots and falls back to a `BTreeMap` for
/// ad-hoc names, so both views always agree.
///
/// # Examples
///
/// ```
/// use vta_sim::{Ctr, Stats};
///
/// let mut stats = Stats::new();
/// stats.add("l2code.access", 3);
/// stats.bump_ctr(Ctr::L2CodeAccess);
/// assert_eq!(stats.get("l2code.access"), 4);
/// assert_eq!(stats.get_ctr(Ctr::L2CodeAccess), 4);
/// assert_eq!(stats.get("never.touched"), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Stats {
    /// Interned counter slots, indexed by `Ctr as usize`.
    fixed: [u64; Ctr::COUNT],
    /// Interned counters explicitly `set` to zero: they read the same as
    /// untouched ones but are still listed by `iter`/`Display`.
    zeroed: [bool; Ctr::COUNT],
    /// Ad-hoc counters with names outside the interned set.
    other: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Default for Stats {
    fn default() -> Self {
        Stats {
            fixed: [0; Ctr::COUNT],
            zeroed: [false; Ctr::COUNT],
            other: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }
}

impl PartialEq for Stats {
    fn eq(&self, o: &Self) -> bool {
        // A counter `set` to zero and an untouched one hold the same
        // value; they differ only in visibility. Compare visibility of
        // the zero-valued slots rather than the raw flags so that e.g.
        // `set(c, 0); add(c, 1)` equals a plain `add(c, 1)`.
        self.fixed == o.fixed
            && Ctr::ALL.iter().all(|&c| {
                let i = c as usize;
                (self.zeroed[i] && self.fixed[i] == 0) == (o.zeroed[i] && o.fixed[i] == 0)
            })
            && self.other == o.other
            && self.histograms == o.histograms
    }
}

impl Eq for Stats {}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Increments an interned counter by one.
    #[inline]
    pub fn bump_ctr(&mut self, c: Ctr) {
        self.fixed[c as usize] += 1;
    }

    /// Adds `n` to an interned counter.
    #[inline]
    pub fn add_ctr(&mut self, c: Ctr, n: u64) {
        self.fixed[c as usize] += n;
    }

    /// Reads an interned counter.
    #[inline]
    pub fn get_ctr(&self, c: Ctr) -> u64 {
        self.fixed[c as usize]
    }

    /// Sets an interned counter to an absolute value.
    #[inline]
    pub fn set_ctr(&mut self, c: Ctr, value: u64) {
        self.fixed[c as usize] = value;
        self.zeroed[c as usize] = value == 0;
    }

    /// Whether an interned counter would be listed by `iter`.
    fn fixed_present(&self, c: Ctr) -> bool {
        self.fixed[c as usize] != 0 || self.zeroed[c as usize]
    }

    /// Adds `n` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        match Ctr::from_name(name) {
            Some(c) => self.add_ctr(c, n),
            None => {
                if let Some(v) = self.other.get_mut(name) {
                    *v += n;
                } else {
                    self.other.insert(name.to_owned(), n);
                }
            }
        }
    }

    /// Increments the counter `name` by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter; unknown names read as zero.
    pub fn get(&self, name: &str) -> u64 {
        match Ctr::from_name(name) {
            Some(c) => self.get_ctr(c),
            None => self.other.get(name).copied().unwrap_or(0),
        }
    }

    /// Sets a counter to an absolute value (for gauges like queue depth).
    pub fn set(&mut self, name: &str, value: u64) {
        match Ctr::from_name(name) {
            Some(c) => self.set_ctr(c, value),
            None => {
                self.other.insert(name.to_owned(), value);
            }
        }
    }

    /// Records `value` into the histogram `name`.
    pub fn record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Returns the histogram `name`, if any values were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Ratio of two counters; `None` if the denominator is zero.
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let d = self.get(den);
        (d != 0).then(|| self.get(num) as f64 / d as f64)
    }

    /// Iterates over all touched counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        // Both sources are already name-ordered; merge them.
        let mut fixed = Ctr::ALL
            .iter()
            .filter(|&&c| self.fixed_present(c))
            .map(|&c| (c.name(), self.fixed[c as usize]))
            .peekable();
        let mut other = self.other.iter().map(|(k, v)| (k.as_str(), *v)).peekable();
        std::iter::from_fn(move || match (fixed.peek(), other.peek()) {
            (Some(&(fk, _)), Some(&(ok, _))) => {
                if fk < ok {
                    fixed.next()
                } else {
                    other.next()
                }
            }
            (Some(_), None) => fixed.next(),
            (None, _) => other.next(),
        })
    }

    /// A deterministic 64-bit digest of every counter and histogram.
    ///
    /// FNV-1a over the name-ordered counter list plus each histogram's
    /// `(name, count, sum, max)` — stable across processes and host
    /// thread counts, so two runs fingerprint equal iff their observable
    /// stats are equal. The determinism CI stage compares this digest
    /// across `--threads` settings.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        for (name, value) in self.iter() {
            eat(name.as_bytes());
            eat(&value.to_le_bytes());
        }
        for (name, hist) in &self.histograms {
            eat(name.as_bytes());
            eat(&hist.count().to_le_bytes());
            eat(&hist.sum().to_le_bytes());
            eat(&hist.max().to_le_bytes());
        }
        h
    }

    /// The first counter or histogram whose value differs from
    /// `other`, as a human-readable description — `None` when the two
    /// registries are equal. Oracle-comparison tests (e.g. the
    /// epoch-parallel fabric stress test) use this to report *which*
    /// counter diverged instead of dumping two full registries.
    pub fn first_difference(&self, other: &Stats) -> Option<String> {
        let mine: Vec<(&str, u64)> = self.iter().collect();
        let theirs: Vec<(&str, u64)> = other.iter().collect();
        let mut a = mine.iter().peekable();
        let mut b = theirs.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(an, av)), Some(&&(bn, bv))) if an == bn => {
                    if av != bv {
                        return Some(format!("counter {an}: {av} vs {bv}"));
                    }
                    a.next();
                    b.next();
                }
                (Some(&&(an, _)), Some(&&(bn, _))) => {
                    let missing = if an < bn { an } else { bn };
                    return Some(format!("counter {missing}: present on one side only"));
                }
                (Some(&&(an, _)), None) | (None, Some(&&(an, _))) => {
                    return Some(format!("counter {an}: present on one side only"));
                }
                (None, None) => break,
            }
        }
        for (name, h) in &self.histograms {
            match other.histograms.get(name) {
                Some(o) if h == o => {}
                Some(_) => return Some(format!("histogram {name}: distributions differ")),
                None => return Some(format!("histogram {name}: present on one side only")),
            }
        }
        for name in other.histograms.keys() {
            if !self.histograms.contains_key(name) {
                return Some(format!("histogram {name}: present on one side only"));
            }
        }
        None
    }

    /// Merges another registry into this one, summing counters.
    pub fn merge(&mut self, other: &Stats) {
        for (a, b) in self.fixed.iter_mut().zip(other.fixed.iter()) {
            *a += b;
        }
        for (a, b) in self.zeroed.iter_mut().zip(other.zeroed.iter()) {
            *a |= b;
        }
        for (k, v) in &other.other {
            *self.other.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

/// A fixed-bucket power-of-two histogram of `u64` samples.
///
/// Bucket `i` holds samples whose value has bit-length `i` (i.e. values in
/// `[2^(i-1), 2^i)`), which is plenty for latency distributions.
///
/// # Examples
///
/// ```
/// use vta_sim::Histogram;
///
/// let mut h = Histogram::default();
/// h.record(6);
/// h.record(100);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.sum(), 106);
/// assert!(h.mean() > 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[64 - value.leading_zeros() as usize] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, or zero if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, or zero if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `p`-quantile of the recorded samples
    /// (`p` in `0.0..=1.0`), or zero if the histogram is empty.
    ///
    /// Buckets are power-of-two sized, so the answer is the upper edge of
    /// the bucket containing the quantile (clamped to the observed
    /// maximum): exact for small values, within 2x above that — plenty for
    /// "p99 queue depth" style reporting.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                if i == 0 {
                    return 0;
                }
                let upper = (1u128 << i) - 1;
                return (upper.min(self.max as u128)) as u64;
            }
        }
        self.max
    }

    /// Accumulates another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.bump("a");
        s.add("a", 4);
        assert_eq!(s.get("a"), 5);
    }

    #[test]
    fn unknown_counter_is_zero() {
        assert_eq!(Stats::new().get("nope"), 0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut s = Stats::new();
        s.add("n", 10);
        assert_eq!(s.ratio("n", "d"), None);
        s.add("d", 4);
        assert_eq!(s.ratio("n", "d"), Some(2.5));
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Stats::new();
        a.add("x", 1);
        let mut b = Stats::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn merge_sums_interned_counters() {
        let mut a = Stats::new();
        a.bump_ctr(Ctr::ChainTaken);
        let mut b = Stats::new();
        b.add("chain.taken", 2);
        a.merge(&b);
        assert_eq!(a.get_ctr(Ctr::ChainTaken), 3);
    }

    #[test]
    fn set_overwrites() {
        let mut s = Stats::new();
        s.add("gauge", 5);
        s.set("gauge", 2);
        assert_eq!(s.get("gauge"), 2);
    }

    #[test]
    fn interned_and_string_views_agree() {
        let mut s = Stats::new();
        s.bump_ctr(Ctr::L2CodeAccess);
        s.add("l2code.access", 2);
        assert_eq!(s.get("l2code.access"), 3);
        assert_eq!(s.get_ctr(Ctr::L2CodeAccess), 3);
        s.set("cycles", 10);
        assert_eq!(s.get_ctr(Ctr::Cycles), 10);
    }

    #[test]
    fn ctr_names_roundtrip_and_are_sorted() {
        let mut prev: Option<&str> = None;
        for c in Ctr::ALL {
            assert_eq!(Ctr::from_name(c.name()), Some(c));
            if let Some(p) = prev {
                assert!(p < c.name(), "{p} !< {}", c.name());
            }
            prev = Some(c.name());
        }
        assert_eq!(Ctr::ALL.len(), Ctr::COUNT);
    }

    #[test]
    fn set_zero_is_listed_untouched_is_not() {
        let mut s = Stats::new();
        s.set("cycles", 0);
        let listed: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(listed, ["cycles"]);
        assert!(!Stats::new().iter().any(|(k, _)| k == "cycles"));
    }

    #[test]
    fn histogram_moments() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.max(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::default();
        a.record(8);
        let mut b = Histogram::default();
        b.record(16);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 16);
    }

    #[test]
    fn stats_display_lists_counters() {
        let mut s = Stats::new();
        s.add("k", 1);
        s.bump_ctr(Ctr::Syscalls);
        let text = s.to_string();
        assert!(text.contains("k = 1"));
        assert!(text.contains("syscalls = 1"));
    }

    #[test]
    fn iter_in_name_order() {
        let mut s = Stats::new();
        s.add("b", 1);
        s.add("a", 1);
        s.bump_ctr(Ctr::Cycles);
        s.bump_ctr(Ctr::TranslateCommitted);
        let names: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "b", "cycles", "translate.committed"]);
    }

    #[test]
    fn percentile_bounds_quantiles() {
        let mut h = Histogram::default();
        assert_eq!(h.percentile(0.5), 0, "empty histogram");
        for v in 1..=100u64 {
            h.record(v);
        }
        // Power-of-two buckets: the answer is an upper bound within 2x.
        for p in [0.5f64, 0.9, 0.99] {
            let exact = (p * 100.0).ceil() as u64;
            let got = h.percentile(p);
            assert!(got >= exact, "p{p}: {got} >= {exact}");
            assert!(got < exact * 2, "p{p}: {got} < {}", exact * 2);
        }
        assert_eq!(h.percentile(1.0), 100, "clamped to observed max");
        let mut zeros = Histogram::default();
        zeros.record(0);
        zeros.record(0);
        assert_eq!(zeros.percentile(0.99), 0);
    }

    /// Property-style check (in-tree RNG, no external proptest): merging
    /// two registries built from disjoint event streams must equal one
    /// registry that replayed both streams, for any interleaving of
    /// additive events. `set` is deliberately excluded — it is an
    /// overwrite, not an event — except for the `set(_, 0)` presence case
    /// checked separately below.
    #[test]
    fn merge_agrees_with_replaying_events() {
        let names = ["a.x", "b.y", "cycles", "l2code.access", "spec.pushes"];
        let hists = ["lat.dram", "depth.q"];
        let mut rng = crate::Rng::seeded(0xDECAF);
        for trial in 0..50 {
            let mut left = Stats::new();
            let mut right = Stats::new();
            let mut replay = Stats::new();
            for _ in 0..rng.range(1, 60) {
                let pick_left = rng.chance(1, 2);
                let target = if pick_left { &mut left } else { &mut right };
                match rng.below(4) {
                    0 => {
                        let n = names[rng.below(names.len() as u64) as usize];
                        target.bump(n);
                        replay.bump(n);
                    }
                    1 => {
                        let n = names[rng.below(names.len() as u64) as usize];
                        let v = rng.below(1000);
                        target.add(n, v);
                        replay.add(n, v);
                    }
                    2 => {
                        let c = Ctr::ALL[rng.below(Ctr::COUNT as u64) as usize];
                        target.bump_ctr(c);
                        replay.bump_ctr(c);
                    }
                    _ => {
                        let h = hists[rng.below(hists.len() as u64) as usize];
                        // Shift keeps sums far from u64 overflow while
                        // still exercising many bucket indices.
                        let v = rng.next_u64() >> (16 + rng.below(48));
                        target.record(h, v);
                        replay.record(h, v);
                    }
                }
            }
            left.merge(&right);
            assert_eq!(left, replay, "trial {trial}");
        }
    }

    #[test]
    fn merge_preserves_set_zero_presence() {
        // A counter set to 0 on either side must still be listed after the
        // merge, and summing into it must behave like a plain counter.
        let mut a = Stats::new();
        a.set("cycles", 0);
        let b = Stats::new();
        let mut merged = a.clone();
        merged.merge(&b);
        assert!(merged.iter().any(|(k, _)| k == "cycles"));
        let mut c = Stats::new();
        c.merge(&a);
        assert!(c.iter().any(|(k, _)| k == "cycles"), "rhs zero is kept");
        // Zero + value merges to the value, and equals a never-zeroed peer.
        let mut d = Stats::new();
        d.add("cycles", 7);
        c.merge(&d);
        assert_eq!(c.get("cycles"), 7);
        let mut plain = Stats::new();
        plain.add("cycles", 7);
        assert_eq!(c, plain);
    }

    #[test]
    fn equality_ignores_how_counters_were_written() {
        let mut a = Stats::new();
        a.set("cycles", 0);
        a.add("cycles", 1);
        let mut b = Stats::new();
        b.bump_ctr(Ctr::Cycles);
        assert_eq!(a, b);
        let mut c = Stats::new();
        c.set("cycles", 0);
        assert_ne!(c, Stats::new(), "a visible zero counter is observable");
    }

    #[test]
    fn fingerprint_tracks_observable_state() {
        let mut a = Stats::new();
        a.add("cycles", 10);
        a.bump_ctr(Ctr::L2CodeAccess);
        a.record("lat", 3);
        a.record("lat", 9);
        let mut b = Stats::new();
        b.record("lat", 3);
        b.bump_ctr(Ctr::L2CodeAccess);
        b.add("cycles", 10);
        b.record("lat", 9);
        assert_eq!(a, b);
        assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "order of writes is invisible"
        );
        b.add("cycles", 1);
        assert_ne!(a.fingerprint(), b.fingerprint(), "a changed counter shows");
        let mut c = a.clone();
        c.record("lat", 9);
        assert_ne!(a.fingerprint(), c.fingerprint(), "histograms are covered");
        assert_eq!(Stats::new().fingerprint(), Stats::new().fingerprint());
    }

    #[test]
    fn first_difference_none_when_equal() {
        assert_eq!(Stats::new().first_difference(&Stats::new()), None);
        let mut a = Stats::new();
        a.add("cycles", 10);
        a.add("a.x", 3);
        a.record("lat", 7);
        let b = a.clone();
        assert_eq!(a.first_difference(&b), None);
        assert_eq!(b.first_difference(&a), None);
    }

    #[test]
    fn first_difference_names_the_divergent_counter() {
        let mut a = Stats::new();
        a.add("cycles", 10);
        let mut b = Stats::new();
        b.add("cycles", 12);
        assert_eq!(
            a.first_difference(&b),
            Some("counter cycles: 10 vs 12".to_string())
        );
        // A counter only one side touched reports presence, not a value.
        let mut c = a.clone();
        c.add("spec.pushes", 1);
        assert_eq!(
            a.first_difference(&c),
            Some("counter spec.pushes: present on one side only".to_string())
        );
        assert_eq!(
            c.first_difference(&a),
            Some("counter spec.pushes: present on one side only".to_string())
        );
    }

    #[test]
    fn first_difference_reports_first_in_name_order() {
        // Several divergences: the report must name the first in the
        // registry's canonical (name) order, regardless of write order.
        let mut a = Stats::new();
        a.add("z.last", 1);
        a.add("b.mid", 2);
        a.bump_ctr(Ctr::Cycles);
        let mut b = Stats::new();
        b.add("z.last", 9);
        b.add("b.mid", 9);
        b.add("cycles", 9);
        assert_eq!(
            a.first_difference(&b),
            Some("counter b.mid: 2 vs 9".to_string())
        );
        // Counters compare before histograms even when a histogram also
        // differs.
        a.record("lat", 1);
        assert_eq!(
            a.first_difference(&b),
            Some("counter b.mid: 2 vs 9".to_string())
        );
    }

    #[test]
    fn first_difference_covers_histograms() {
        let mut a = Stats::new();
        a.record("lat", 4);
        let mut b = Stats::new();
        b.record("lat", 4);
        assert_eq!(a.first_difference(&b), None);
        b.record("lat", 8);
        assert_eq!(
            a.first_difference(&b),
            Some("histogram lat: distributions differ".to_string())
        );
        let c = Stats::new();
        assert_eq!(
            a.first_difference(&c),
            Some("histogram lat: present on one side only".to_string())
        );
        assert_eq!(
            c.first_difference(&a),
            Some("histogram lat: present on one side only".to_string())
        );
    }
}
