use std::collections::BTreeMap;
use std::fmt;

/// A registry of named event counters and histograms for one simulation run.
///
/// Every figure in the paper's evaluation is a ratio of two counters
/// (e.g. Figure 6 is `l2code.accesses / cycles`), so components bump
/// counters here and the benchmark harness reads them back by name at the
/// end of a run. Names are dotted paths like `"l2code.miss"`.
///
/// # Examples
///
/// ```
/// use vta_sim::Stats;
///
/// let mut stats = Stats::new();
/// stats.add("l2code.access", 3);
/// stats.bump("l2code.access");
/// assert_eq!(stats.get("l2code.access"), 4);
/// assert_eq!(stats.get("never.touched"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stats {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Stats {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Adds `n` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_owned(), n);
        }
    }

    /// Increments the counter `name` by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter; unknown names read as zero.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sets a counter to an absolute value (for gauges like queue depth).
    pub fn set(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Records `value` into the histogram `name`.
    pub fn record(&mut self, name: &str, value: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(value);
    }

    /// Returns the histogram `name`, if any values were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Ratio of two counters; `None` if the denominator is zero.
    pub fn ratio(&self, num: &str, den: &str) -> Option<f64> {
        let d = self.get(den);
        (d != 0).then(|| self.get(num) as f64 / d as f64)
    }

    /// Iterates over all counters in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Merges another registry into this one, summing counters.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        Ok(())
    }
}

/// A fixed-bucket power-of-two histogram of `u64` samples.
///
/// Bucket `i` holds samples whose value has bit-length `i` (i.e. values in
/// `[2^(i-1), 2^i)`), which is plenty for latency distributions.
///
/// # Examples
///
/// ```
/// use vta_sim::Histogram;
///
/// let mut h = Histogram::default();
/// h.record(6);
/// h.record(100);
/// assert_eq!(h.count(), 2);
/// assert_eq!(h.sum(), 106);
/// assert!(h.mean() > 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[64 - value.leading_zeros() as usize] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, or zero if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, or zero if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Accumulates another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::new();
        s.bump("a");
        s.add("a", 4);
        assert_eq!(s.get("a"), 5);
    }

    #[test]
    fn unknown_counter_is_zero() {
        assert_eq!(Stats::new().get("nope"), 0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let mut s = Stats::new();
        s.add("n", 10);
        assert_eq!(s.ratio("n", "d"), None);
        s.add("d", 4);
        assert_eq!(s.ratio("n", "d"), Some(2.5));
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Stats::new();
        a.add("x", 1);
        let mut b = Stats::new();
        b.add("x", 2);
        b.add("y", 3);
        a.merge(&b);
        assert_eq!(a.get("x"), 3);
        assert_eq!(a.get("y"), 3);
    }

    #[test]
    fn set_overwrites() {
        let mut s = Stats::new();
        s.add("gauge", 5);
        s.set("gauge", 2);
        assert_eq!(s.get("gauge"), 2);
    }

    #[test]
    fn histogram_moments() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 4] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10);
        assert_eq!(h.max(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::default();
        a.record(8);
        let mut b = Histogram::default();
        b.record(16);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 16);
    }

    #[test]
    fn stats_display_lists_counters() {
        let mut s = Stats::new();
        s.add("k", 1);
        assert!(s.to_string().contains("k = 1"));
    }

    #[test]
    fn iter_in_name_order() {
        let mut s = Stats::new();
        s.add("b", 1);
        s.add("a", 1);
        let names: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
