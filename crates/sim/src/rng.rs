/// A deterministic pseudo-random number generator (xoshiro256\*\*).
///
/// All randomness in the simulator — workload input generation, hashed
/// placement decisions — flows through this type so that a run is a pure
/// function of its seed. We implement the generator directly rather than
/// depending on a particular version of an external crate, because cycle
/// counts in EXPERIMENTS.md must be reproducible bit-for-bit.
///
/// # Examples
///
/// ```
/// use vta_sim::Rng;
///
/// let mut a = Rng::seeded(42);
/// let mut b = Rng::seeded(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let r = a.below(10);
/// assert!(r < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns the next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below requires a nonzero bound");
        // Lemire-style widening multiply; bias is negligible at u64 width.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the inclusive range `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "Rng::range requires lo <= hi");
        lo + self.below(hi - lo + 1)
    }

    /// A Bernoulli draw that is `true` with probability `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = Rng::seeded(123);
        let mut b = Rng::seeded(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seeded(1);
        let mut b = Rng::seeded(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_stays_in_bound() {
        let mut r = Rng::seeded(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    fn range_is_inclusive() {
        let mut r = Rng::seeded(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seeded(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::seeded(13);
        assert!(!r.chance(0, 10));
        assert!(r.chance(10, 10));
    }
}
