//! Host wall-clock span profiling: the simulator's *second* clock domain.
//!
//! The [`crate::Tracer`] records what the **simulated machine** did, in
//! simulated cycles; this module records what the **host** did to produce
//! those cycles, in wall-clock nanoseconds. The two domains never mix:
//! nothing recorded here may feed [`crate::Stats`], metrics windows, or
//! any fingerprinted output, because host wall time depends on the host
//! scheduler and would break the bit-identical-across-thread-counts
//! invariant the whole workspace is built on.
//!
//! Design constraints, in the same spirit as [`crate::trace`]:
//!
//! 1. **Recording is per-thread and lock-free.** A [`ThreadProf`] owns
//!    its span stack, phase totals, and event buffer outright; the only
//!    shared state is a mutex touched once, when the thread's profile is
//!    flushed (on drop). Worker threads never contend while recording.
//! 2. **Profiling never changes simulated behavior.** Instrumented code
//!    only reads the host clock; it never branches on what was read.
//! 3. **Disabled profiling costs (almost) nothing.** A disabled handle
//!    is one branch per call; with the `prof` cargo feature off every
//!    type here is zero-sized and every method compiles to nothing.
//!
//! Spans nest: [`ThreadProf::enter`]/[`ThreadProf::exit`] maintain a
//! stack, and phase totals are **exclusive** (self) time — a parent's
//! total excludes the time its children accounted for, so a thread's
//! phase totals sum to at most its busy wall time and a top-phases
//! table reads as a true breakdown.
//!
//! # Examples
//!
//! ```
//! use vta_sim::{ProfConfig, Profiler};
//!
//! let p = Profiler::new(ProfConfig::default());
//! let mut t = p.thread("worker0");
//! t.enter("translate");
//! t.enter("snapshot");
//! t.exit();
//! t.exit();
//! drop(t); // flushes the thread's profile
//! let report = p.report();
//! if cfg!(feature = "prof") {
//!     assert_eq!(report.threads.len(), 1);
//!     assert_eq!(report.threads[0].name, "worker0");
//! } else {
//!     assert!(report.threads.is_empty());
//! }
//! ```

#[cfg(feature = "prof")]
use std::sync::{Arc, Mutex};
#[cfg(feature = "prof")]
use std::time::Instant;

/// Configuration for a [`Profiler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfConfig {
    /// Per-thread timeline event capacity. Phase *totals* are always
    /// exact; when a thread has recorded this many events, further ones
    /// are dropped (and counted in [`ThreadProfile::dropped`]).
    pub max_events_per_thread: usize,
    /// Minimum span duration, in nanoseconds, for a timeline event to
    /// be recorded. Totals still include shorter spans exactly; the
    /// floor only keeps per-block micro-spans from flooding the event
    /// buffer.
    pub event_min_nanos: u64,
}

impl Default for ProfConfig {
    fn default() -> Self {
        ProfConfig {
            max_events_per_thread: 1 << 14,
            event_min_nanos: 1_000,
        }
    }
}

/// Exclusive (self) wall time one thread spent in one phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Phase name as passed to [`ThreadProf::enter`].
    pub phase: &'static str,
    /// Exclusive nanoseconds: time inside this phase minus time inside
    /// nested child phases.
    pub nanos: u64,
    /// Number of times the phase was entered.
    pub count: u64,
}

/// One recorded timeline span (inclusive duration, unlike the totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfEvent {
    /// Phase name.
    pub phase: &'static str,
    /// Start, in nanoseconds since the profiler was created.
    pub start_nanos: u64,
    /// Inclusive duration in nanoseconds (children not subtracted —
    /// the timeline shows nesting; the totals show the breakdown).
    pub dur_nanos: u64,
}

/// Everything one thread recorded, flushed when its [`ThreadProf`]
/// dropped.
#[derive(Debug, Clone, Default)]
pub struct ThreadProfile {
    /// Thread name as passed to [`Profiler::thread`].
    pub name: String,
    /// Exclusive per-phase totals, largest first.
    pub phases: Vec<PhaseTotal>,
    /// Timeline events in start order (recording order).
    pub events: Vec<ProfEvent>,
    /// Events lost to the per-thread capacity limit.
    pub dropped: u64,
}

impl ThreadProfile {
    /// Sum of exclusive phase nanoseconds — the thread's attributed
    /// busy time.
    pub fn busy_nanos(&self) -> u64 {
        self.phases.iter().map(|p| p.nanos).sum()
    }
}

/// A host wall-time profile: every flushed thread, plus the wall time
/// the profiler itself has been alive (the denominator for "% of
/// wall" columns).
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Nanoseconds from profiler creation to [`Profiler::report`].
    pub wall_nanos: u64,
    /// Flushed thread profiles, sorted by thread name.
    pub threads: Vec<ThreadProfile>,
}

#[cfg(feature = "prof")]
#[derive(Debug)]
struct Shared {
    epoch: Instant,
    cfg: ProfConfig,
    profiles: Mutex<Vec<ThreadProfile>>,
}

/// Cloneable handle to one profiling session; see the
/// [module docs](self).
///
/// Obtain one with [`Profiler::new`] (recording) or
/// [`Profiler::disabled`]; hand each thread a [`ThreadProf`] via
/// [`Profiler::thread`]. With the `prof` cargo feature off, both are
/// zero-sized no-ops.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    #[cfg(feature = "prof")]
    shared: Option<Arc<Shared>>,
}

impl Profiler {
    /// A recording profiler; its creation instant is the timeline's
    /// time zero.
    ///
    /// With the `prof` cargo feature off this is the same as
    /// [`Profiler::disabled`].
    pub fn new(cfg: ProfConfig) -> Self {
        #[cfg(feature = "prof")]
        {
            Profiler {
                shared: Some(Arc::new(Shared {
                    epoch: Instant::now(),
                    cfg,
                    profiles: Mutex::new(Vec::new()),
                })),
            }
        }
        #[cfg(not(feature = "prof"))]
        {
            let _ = cfg;
            Profiler {}
        }
    }

    /// A profiler that records nothing; every call is one branch.
    pub fn disabled() -> Self {
        Profiler::default()
    }

    /// True when spans are actually being recorded.
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "prof")]
        {
            self.shared.is_some()
        }
        #[cfg(not(feature = "prof"))]
        {
            false
        }
    }

    /// A per-thread recorder named `name`. The recorder flushes its
    /// profile back to this profiler when dropped; dropping it on the
    /// recording thread (worker exit, pool join) is the only
    /// synchronization point.
    pub fn thread(&self, name: &str) -> ThreadProf {
        #[cfg(feature = "prof")]
        {
            ThreadProf {
                inner: self.shared.as_ref().map(|s| {
                    Box::new(ThreadInner {
                        shared: Arc::clone(s),
                        name: name.to_string(),
                        stack: Vec::with_capacity(8),
                        totals: Vec::new(),
                        events: Vec::new(),
                        dropped: 0,
                    })
                }),
            }
        }
        #[cfg(not(feature = "prof"))]
        {
            let _ = name;
            ThreadProf {}
        }
    }

    /// Collects every thread profile flushed so far (threads whose
    /// [`ThreadProf`] is still alive are not included — drop or join
    /// them first). Threads are sorted by name so the report is stable
    /// regardless of flush order.
    pub fn report(&self) -> ProfileReport {
        #[cfg(feature = "prof")]
        {
            let Some(s) = self.shared.as_ref() else {
                return ProfileReport::default();
            };
            let mut threads = s.profiles.lock().expect("profiler poisoned").clone();
            threads.sort_by(|a, b| a.name.cmp(&b.name));
            ProfileReport {
                wall_nanos: s.epoch.elapsed().as_nanos() as u64,
                threads,
            }
        }
        #[cfg(not(feature = "prof"))]
        {
            ProfileReport::default()
        }
    }
}

#[cfg(feature = "prof")]
#[derive(Debug)]
struct Frame {
    phase: &'static str,
    start: Instant,
    /// Inclusive nanoseconds already attributed to nested children.
    child_nanos: u64,
}

#[cfg(feature = "prof")]
#[derive(Debug)]
struct ThreadInner {
    shared: Arc<Shared>,
    name: String,
    stack: Vec<Frame>,
    /// Linear-scan map: phase name -> (exclusive nanos, count). Phase
    /// vocabularies are tiny (tens), so a scan beats hashing.
    totals: Vec<(&'static str, u64, u64)>,
    events: Vec<ProfEvent>,
    dropped: u64,
}

#[cfg(feature = "prof")]
impl ThreadInner {
    /// Closes the innermost open frame; see [`ThreadProf::exit`].
    fn close_top(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let inclusive = frame.start.elapsed().as_nanos() as u64;
        let exclusive = inclusive.saturating_sub(frame.child_nanos);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_nanos += inclusive;
        }
        match self.totals.iter_mut().find(|(p, _, _)| *p == frame.phase) {
            Some((_, nanos, count)) => {
                *nanos += exclusive;
                *count += 1;
            }
            None => self.totals.push((frame.phase, exclusive, 1)),
        }
        if inclusive >= self.shared.cfg.event_min_nanos {
            if self.events.len() < self.shared.cfg.max_events_per_thread {
                self.events.push(ProfEvent {
                    phase: frame.phase,
                    start_nanos: frame.start.duration_since(self.shared.epoch).as_nanos() as u64,
                    dur_nanos: inclusive,
                });
            } else {
                self.dropped += 1;
            }
        }
    }
}

/// Per-thread span recorder; obtained from [`Profiler::thread`], owned
/// by exactly one thread, flushed on drop.
///
/// Calls on a disabled recorder are one branch each; with the `prof`
/// feature off the type is zero-sized and the methods compile to
/// nothing.
#[derive(Debug, Default)]
pub struct ThreadProf {
    #[cfg(feature = "prof")]
    inner: Option<Box<ThreadInner>>,
}

impl ThreadProf {
    /// A recorder that records nothing (for call sites that need a
    /// recorder before any profiler exists).
    pub fn disabled() -> Self {
        ThreadProf::default()
    }

    /// True when spans are actually being recorded.
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "prof")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "prof"))]
        {
            false
        }
    }

    /// Opens a span for `phase`, nested inside the current span if one
    /// is open. Must be balanced by [`ThreadProf::exit`].
    #[inline]
    pub fn enter(&mut self, phase: &'static str) {
        #[cfg(feature = "prof")]
        if let Some(t) = self.inner.as_deref_mut() {
            t.stack.push(Frame {
                phase,
                start: Instant::now(),
                child_nanos: 0,
            });
        }
        #[cfg(not(feature = "prof"))]
        let _ = phase;
    }

    /// Closes the innermost open span, attributing its exclusive time
    /// to its phase total and its inclusive time to the parent's child
    /// accounting. No-op if nothing is open.
    #[inline]
    pub fn exit(&mut self) {
        #[cfg(feature = "prof")]
        if let Some(t) = self.inner.as_deref_mut() {
            t.close_top();
        }
    }
}

#[cfg(feature = "prof")]
impl Drop for ThreadProf {
    fn drop(&mut self) {
        let Some(mut t) = self.inner.take() else {
            return;
        };
        // Close anything left open (a panicking worker, an early
        // return) so the totals stay meaningful.
        while !t.stack.is_empty() {
            t.close_top();
        }
        let mut phases: Vec<PhaseTotal> = t
            .totals
            .iter()
            .map(|&(phase, nanos, count)| PhaseTotal {
                phase,
                nanos,
                count,
            })
            .collect();
        phases.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.phase.cmp(b.phase)));
        let profile = ThreadProfile {
            name: std::mem::take(&mut t.name),
            phases,
            events: std::mem::take(&mut t.events),
            dropped: t.dropped,
        };
        t.shared
            .profiles
            .lock()
            .expect("profiler poisoned")
            .push(profile);
    }
}

#[cfg(all(test, feature = "prof"))]
mod tests {
    use super::*;

    #[test]
    fn totals_are_exclusive_and_counted() {
        let p = Profiler::new(ProfConfig::default());
        let mut t = p.thread("w");
        t.enter("outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.enter("inner");
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.exit();
        t.exit();
        drop(t);
        let r = p.report();
        assert_eq!(r.threads.len(), 1);
        let th = &r.threads[0];
        let get = |name: &str| {
            th.phases
                .iter()
                .find(|p| p.phase == name)
                .expect("phase recorded")
                .clone()
        };
        let outer = get("outer");
        let inner = get("inner");
        assert_eq!((outer.count, inner.count), (1, 1));
        assert!(inner.nanos >= 1_000_000, "inner slept ~2ms");
        // Exclusive: outer's total must not include inner's sleep
        // twice — the sum of phases can't exceed the wall time.
        assert!(th.busy_nanos() <= r.wall_nanos);
    }

    #[test]
    fn event_floor_and_capacity() {
        let p = Profiler::new(ProfConfig {
            max_events_per_thread: 2,
            event_min_nanos: 0,
        });
        let mut t = p.thread("w");
        for _ in 0..5 {
            t.enter("tick");
            t.exit();
        }
        drop(t);
        let r = p.report();
        assert_eq!(r.threads[0].events.len(), 2);
        assert_eq!(r.threads[0].dropped, 3);
        assert_eq!(r.threads[0].phases[0].count, 5, "totals are exact");

        // A high floor keeps micro-spans out of the buffer entirely.
        let p = Profiler::new(ProfConfig {
            max_events_per_thread: 2,
            event_min_nanos: u64::MAX,
        });
        let mut t = p.thread("w");
        t.enter("tick");
        t.exit();
        drop(t);
        let r = p.report();
        assert!(r.threads[0].events.is_empty());
        assert_eq!(r.threads[0].dropped, 0, "below-floor spans are not drops");
    }

    #[test]
    fn report_sorts_threads_by_name() {
        let p = Profiler::new(ProfConfig::default());
        for name in ["zeta", "alpha", "mid"] {
            let mut t = p.thread(name);
            t.enter("x");
            t.exit();
            drop(t);
        }
        let names: Vec<_> = p.report().threads.iter().map(|t| t.name.clone()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn drop_closes_open_spans() {
        let p = Profiler::new(ProfConfig::default());
        let mut t = p.thread("w");
        t.enter("outer");
        t.enter("inner");
        drop(t); // both frames still open
        let th = &p.report().threads[0];
        assert_eq!(th.phases.len(), 2, "open frames were closed and counted");
    }

    #[test]
    fn unbalanced_exit_is_harmless() {
        let p = Profiler::new(ProfConfig::default());
        let mut t = p.thread("w");
        t.exit();
        t.enter("x");
        t.exit();
        t.exit();
        drop(t);
        assert_eq!(p.report().threads[0].phases.len(), 1);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        let mut t = p.thread("w");
        assert!(!t.is_enabled());
        t.enter("x");
        t.exit();
        drop(t);
        let r = p.report();
        assert_eq!(r.wall_nanos, 0);
        assert!(r.threads.is_empty());
    }

    #[test]
    fn handles_are_cloneable_and_share_the_session() {
        let p = Profiler::new(ProfConfig::default());
        let p2 = p.clone();
        let h = std::thread::spawn(move || {
            let mut t = p2.thread("spawned");
            t.enter("x");
            t.exit();
        });
        h.join().expect("worker ran");
        assert_eq!(p.report().threads.len(), 1);
    }
}
