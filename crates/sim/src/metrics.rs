//! Windowed metrics: deterministic, cycle-triggered sampling of counters
//! and gauges into a ring-buffered time series.
//!
//! [`Stats`] only reports end-of-run totals; the dynamics the paper cares
//! about — translation-queue pressure driving the morph manager, code-cache
//! warm-up, the manager tile saturating — are *phase* behaviors. The
//! [`Metrics`] recorder closes one [`Window`] every `interval` simulated
//! cycles, storing the **delta** of every interned [`Ctr`] counter over the
//! window plus a point-in-time sample of each registered gauge (queue
//! depths, role occupancy, pool counters).
//!
//! The design constraints mirror [`crate::trace`]:
//!
//! 1. **Sampling never changes simulated time.** The simulator decides when
//!    a window boundary has passed ([`Metrics::due`]) using only the
//!    simulated clock, and hands in snapshots it already computed. Nothing
//!    a simulator could branch on is returned, so a run with metrics on is
//!    bit-identical to a run with metrics off.
//! 2. **Disabled metrics cost (almost) nothing.** A disabled recorder is
//!    one branch per call; with the `metrics` cargo feature off the struct
//!    is zero-sized and every method compiles to an empty body.
//! 3. **The series is self-checking.** Window deltas telescope: the sum of
//!    all retained deltas plus [`Metrics::dropped_totals`] equals the final
//!    counter snapshot exactly ([`Metrics::reconcile`]). Deltas use
//!    wrapping arithmetic because a few sources are not monotone (morphing
//!    retires translation slaves *with* their accumulated counts), so the
//!    invariant is exact even across reconfigurations.
//!
//! Sampling is **cycle-triggered on a fixed grid**: boundaries are at
//! `interval`, `2*interval`, … of simulated time, independent of when the
//! simulator happens to check. A check that arrives late closes one window
//! spanning every missed boundary (the same anti-drift arithmetic as the
//! morph manager), so the series is a pure function of (guest image,
//! config, interval).
//!
//! # Examples
//!
//! ```
//! use vta_sim::{Ctr, Cycle, Metrics, MetricsConfig};
//!
//! let mut m = Metrics::new(MetricsConfig {
//!     interval: 100,
//!     ..MetricsConfig::default()
//! });
//! let depth = m.gauge("specq.depth");
//! let mut snap = [0u64; Ctr::COUNT];
//! snap[Ctr::Cycles as usize] = 130;
//! snap[Ctr::GuestInsns as usize] = 65;
//! m.sample(Cycle(130), &snap, &[7]);
//! if cfg!(feature = "metrics") {
//!     assert!(m.due(Cycle(230)));
//!     let w = m.windows().next().expect("one window closed");
//!     assert_eq!((w.start, w.end), (0, 100));
//!     assert_eq!(w.delta(Ctr::GuestInsns), 65);
//!     assert_eq!(w.gauge(depth), Some(7));
//! }
//! ```

use crate::{Ctr, Cycle, Stats};
#[cfg(feature = "metrics")]
use std::collections::BTreeMap;
#[cfg(feature = "metrics")]
use std::collections::VecDeque;

/// Configuration for a [`Metrics`] recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Window length in simulated cycles; boundaries sit on the fixed grid
    /// `interval, 2*interval, …`. Clamped to at least 1.
    pub interval: u64,
    /// Ring capacity in windows. When full the *oldest* window is folded
    /// into [`Metrics::dropped_totals`] so reconciliation stays exact.
    pub max_windows: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            interval: 10_000,
            max_windows: 1 << 12,
        }
    }
}

/// Opaque handle for one registered gauge (a point-sampled value column in
/// the series, e.g. a queue depth or the live translator-tile count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GaugeId(pub u16);

/// One closed sampling window: counter deltas over `[start, end)` plus the
/// gauge values observed when the window closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// Grid cycle the window opened at.
    pub start: u64,
    /// Grid cycle the window closed at (the final window of a run may
    /// close off-grid, at the cycle the run ended).
    pub end: u64,
    /// Per-counter deltas over the window, indexed by `Ctr as usize`.
    /// Wrapping differences: a shrinking source (see module docs) shows up
    /// as a two's-complement negative; read it via [`Window::delta_i64`].
    pub ctrs: [u64; Ctr::COUNT],
    /// Gauge samples at window close, indexed by [`GaugeId`]. Gauges
    /// registered after this window closed are absent.
    pub gauges: Vec<u64>,
}

impl Window {
    /// The delta of counter `c` over this window.
    #[inline]
    pub fn delta(&self, c: Ctr) -> u64 {
        self.ctrs[c as usize]
    }

    /// The delta of `c` as a signed value (non-monotone sources can shrink
    /// within a window; see the module docs).
    #[inline]
    pub fn delta_i64(&self, c: Ctr) -> i64 {
        self.ctrs[c as usize] as i64
    }

    /// The gauge sample for `g`, if `g` was registered when this window
    /// closed.
    #[inline]
    pub fn gauge(&self, g: GaugeId) -> Option<u64> {
        self.gauges.get(g.0 as usize).copied()
    }

    /// Cycles per guest instruction over this window, if any instructions
    /// retired.
    pub fn cpi(&self) -> Option<f64> {
        let insns = self.delta(Ctr::GuestInsns);
        (insns != 0).then(|| self.delta(Ctr::Cycles) as f64 / insns as f64)
    }

    /// `miss / (hit + miss)` over this window, if there were any accesses.
    pub fn miss_rate(&self, miss: Ctr, hit: Ctr) -> Option<f64> {
        let m = self.delta(miss);
        let total = m + self.delta(hit);
        (total != 0).then(|| m as f64 / total as f64)
    }
}

/// A point-in-time annotation in the series (e.g. a morph role switch),
/// recorded at its exact simulated cycle rather than at window resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricEvent {
    /// Cycle the event happened at.
    pub ts: u64,
    /// Event name.
    pub name: &'static str,
    /// Free-form numeric argument (e.g. morph lag in cycles).
    pub value: u64,
}

#[cfg(feature = "metrics")]
#[derive(Debug)]
struct MBuf {
    interval: u64,
    capacity: usize,
    windows: VecDeque<Window>,
    /// Windows evicted from the ring.
    dropped: u64,
    /// Counter deltas of evicted windows, accumulated (wrapping) so the
    /// telescoping invariant survives drops.
    dropped_ctrs: [u64; Ctr::COUNT],
    /// Counter snapshot at the last window close (wrapping baseline).
    last: [u64; Ctr::COUNT],
    /// Grid cycle the currently open window started at.
    open_start: u64,
    /// First grid boundary not yet closed.
    next_due: u64,
    gauges: Vec<String>,
    by_name: BTreeMap<String, GaugeId>,
    events: Vec<MetricEvent>,
    events_dropped: u64,
    finished: bool,
}

#[cfg(feature = "metrics")]
impl MBuf {
    fn new(cfg: MetricsConfig) -> Self {
        let interval = cfg.interval.max(1);
        MBuf {
            interval,
            capacity: cfg.max_windows.max(1),
            windows: VecDeque::new(),
            dropped: 0,
            dropped_ctrs: [0; Ctr::COUNT],
            last: [0; Ctr::COUNT],
            open_start: 0,
            next_due: interval,
            gauges: Vec::new(),
            by_name: BTreeMap::new(),
            events: Vec::new(),
            events_dropped: 0,
            finished: false,
        }
    }

    fn close(&mut self, end: u64, ctrs: &[u64; Ctr::COUNT], gauges: &[u64]) {
        debug_assert_eq!(
            gauges.len(),
            self.gauges.len(),
            "gauge sample vector must match registration order"
        );
        let mut deltas = [0u64; Ctr::COUNT];
        for (d, (cur, last)) in deltas.iter_mut().zip(ctrs.iter().zip(self.last.iter())) {
            *d = cur.wrapping_sub(*last);
        }
        let w = Window {
            start: self.open_start,
            end,
            ctrs: deltas,
            gauges: gauges.to_vec(),
        };
        if self.windows.len() >= self.capacity {
            if let Some(old) = self.windows.pop_front() {
                for (acc, d) in self.dropped_ctrs.iter_mut().zip(old.ctrs.iter()) {
                    *acc = acc.wrapping_add(*d);
                }
                self.dropped += 1;
            }
        }
        self.windows.push_back(w);
        self.last = *ctrs;
        self.open_start = end;
    }
}

/// Records windowed counter/gauge time series; see the
/// [module docs](self) for the design constraints.
///
/// Obtain one with [`Metrics::new`] (recording) or [`Metrics::disabled`]
/// (every call is a cheap no-op). With the `metrics` cargo feature off,
/// both are zero-sized no-ops.
#[derive(Debug, Default)]
pub struct Metrics {
    #[cfg(feature = "metrics")]
    buf: Option<Box<MBuf>>,
}

impl Metrics {
    /// A recording metrics layer sampling every `cfg.interval` cycles.
    ///
    /// With the `metrics` cargo feature off this is the same as
    /// [`Metrics::disabled`].
    pub fn new(cfg: MetricsConfig) -> Self {
        #[cfg(feature = "metrics")]
        {
            Metrics {
                buf: Some(Box::new(MBuf::new(cfg))),
            }
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = cfg;
            Metrics {}
        }
    }

    /// A recorder that records nothing; every call is one branch.
    pub fn disabled() -> Self {
        Metrics::default()
    }

    /// True when windows are actually being recorded.
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "metrics")]
        {
            self.buf.is_some()
        }
        #[cfg(not(feature = "metrics"))]
        {
            false
        }
    }

    /// The sampling interval in cycles (0 when disabled).
    pub fn interval(&self) -> u64 {
        #[cfg(feature = "metrics")]
        {
            self.buf.as_deref().map_or(0, |b| b.interval)
        }
        #[cfg(not(feature = "metrics"))]
        {
            0
        }
    }

    /// Registers (or looks up) the gauge named `name` and returns its id.
    ///
    /// Names are deduplicated like tracer tracks. Register every gauge
    /// before the first [`Metrics::sample`]: windows only carry the gauges
    /// known when they close. On a disabled recorder this returns
    /// `GaugeId::default()`.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        #[cfg(feature = "metrics")]
        if let Some(b) = self.buf.as_deref_mut() {
            if let Some(&id) = b.by_name.get(name) {
                return id;
            }
            let id = GaugeId(b.gauges.len() as u16);
            b.gauges.push(name.to_string());
            b.by_name.insert(name.to_string(), id);
            return id;
        }
        #[cfg(not(feature = "metrics"))]
        let _ = name;
        GaugeId::default()
    }

    /// All registered gauges as `(id, name)`, in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (GaugeId, &str)> {
        #[cfg(feature = "metrics")]
        {
            self.buf.as_deref().into_iter().flat_map(|b| {
                b.gauges
                    .iter()
                    .enumerate()
                    .map(|(i, n)| (GaugeId(i as u16), n.as_str()))
            })
        }
        #[cfg(not(feature = "metrics"))]
        {
            std::iter::empty()
        }
    }

    /// Number of registered gauges.
    pub fn gauge_count(&self) -> usize {
        #[cfg(feature = "metrics")]
        {
            self.buf.as_deref().map_or(0, |b| b.gauges.len())
        }
        #[cfg(not(feature = "metrics"))]
        {
            0
        }
    }

    /// True when at least one grid boundary at or before `now` has not been
    /// closed yet — i.e. the caller should take a snapshot and
    /// [`Metrics::sample`]. Always false when disabled or finished, so the
    /// simulator's hot path pays one branch.
    #[inline]
    pub fn due(&self, now: Cycle) -> bool {
        #[cfg(feature = "metrics")]
        {
            self.buf
                .as_deref()
                .is_some_and(|b| !b.finished && now.0 >= b.next_due)
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = now;
            false
        }
    }

    /// Closes the window whose grid boundary passed at or before `now`.
    ///
    /// `ctrs` is the caller's full counter snapshot (cumulative values
    /// since run start); `gauges` holds one sample per registered gauge in
    /// registration order. If the caller skipped several boundaries (a
    /// long block, a demand-translation stall), one window spanning all of
    /// them is closed — same anti-drift grid arithmetic as the morph
    /// manager. No-op unless [`Metrics::due`].
    pub fn sample(&mut self, now: Cycle, ctrs: &[u64; Ctr::COUNT], gauges: &[u64]) {
        #[cfg(feature = "metrics")]
        if let Some(b) = self.buf.as_deref_mut() {
            if b.finished || now.0 < b.next_due {
                return;
            }
            let missed = (now.0 - b.next_due) / b.interval;
            let end = b.next_due + missed * b.interval;
            b.next_due = end + b.interval;
            b.close(end, ctrs, gauges);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (now, ctrs, gauges);
    }

    /// Closes the final (usually partial, off-grid) window at end of run
    /// and seals the series; later `sample`/`event` calls are ignored.
    /// The windowed sums now telescope to `ctrs` exactly
    /// ([`Metrics::reconcile`]).
    pub fn finish(&mut self, now: Cycle, ctrs: &[u64; Ctr::COUNT], gauges: &[u64]) {
        #[cfg(feature = "metrics")]
        if let Some(b) = self.buf.as_deref_mut() {
            if b.finished {
                return;
            }
            if now.0 > b.open_start || ctrs != &b.last {
                b.close(now.0.max(b.open_start), ctrs, gauges);
            }
            b.finished = true;
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (now, ctrs, gauges);
    }

    /// True once [`Metrics::finish`] sealed the series.
    pub fn is_finished(&self) -> bool {
        #[cfg(feature = "metrics")]
        {
            self.buf.as_deref().is_some_and(|b| b.finished)
        }
        #[cfg(not(feature = "metrics"))]
        {
            false
        }
    }

    /// Records a point-in-time annotation at its exact cycle (bounded by
    /// the window capacity; overflow is counted in
    /// [`Metrics::events_dropped`]).
    #[inline]
    pub fn event(&mut self, ts: Cycle, name: &'static str, value: u64) {
        #[cfg(feature = "metrics")]
        if let Some(b) = self.buf.as_deref_mut() {
            if b.finished {
                return;
            }
            if b.events.len() < b.capacity {
                b.events.push(MetricEvent {
                    ts: ts.0,
                    name,
                    value,
                });
            } else {
                b.events_dropped += 1;
            }
        }
        #[cfg(not(feature = "metrics"))]
        let _ = (ts, name, value);
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &Window> {
        #[cfg(feature = "metrics")]
        {
            self.buf
                .as_deref()
                .into_iter()
                .flat_map(|b| b.windows.iter())
        }
        #[cfg(not(feature = "metrics"))]
        {
            std::iter::empty()
        }
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        #[cfg(feature = "metrics")]
        {
            self.buf.as_deref().map_or(0, |b| b.windows.len())
        }
        #[cfg(not(feature = "metrics"))]
        {
            0
        }
    }

    /// True when no windows have been closed (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Windows evicted from the ring since creation.
    pub fn dropped(&self) -> u64 {
        #[cfg(feature = "metrics")]
        {
            self.buf.as_deref().map_or(0, |b| b.dropped)
        }
        #[cfg(not(feature = "metrics"))]
        {
            0
        }
    }

    /// Accumulated counter deltas of evicted windows (all zero when
    /// nothing was dropped), so `dropped_totals + Σ retained = final`.
    pub fn dropped_totals(&self) -> [u64; Ctr::COUNT] {
        #[cfg(feature = "metrics")]
        {
            self.buf
                .as_deref()
                .map_or([0; Ctr::COUNT], |b| b.dropped_ctrs)
        }
        #[cfg(not(feature = "metrics"))]
        {
            [0; Ctr::COUNT]
        }
    }

    /// Recorded annotations, in emission (cycle) order.
    pub fn events(&self) -> impl Iterator<Item = &MetricEvent> {
        #[cfg(feature = "metrics")]
        {
            self.buf
                .as_deref()
                .into_iter()
                .flat_map(|b| b.events.iter())
        }
        #[cfg(not(feature = "metrics"))]
        {
            std::iter::empty()
        }
    }

    /// Annotations lost to the event cap.
    pub fn events_dropped(&self) -> u64 {
        #[cfg(feature = "metrics")]
        {
            self.buf.as_deref().map_or(0, |b| b.events_dropped)
        }
        #[cfg(not(feature = "metrics"))]
        {
            0
        }
    }

    /// The series' own view of counter `c`'s run total: dropped deltas
    /// plus every retained window's delta (wrapping).
    pub fn total(&self, c: Ctr) -> u64 {
        #[cfg(feature = "metrics")]
        {
            self.buf.as_deref().map_or(0, |b| {
                let i = c as usize;
                b.windows
                    .iter()
                    .fold(b.dropped_ctrs[i], |acc, w| acc.wrapping_add(w.ctrs[i]))
            })
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = c;
            0
        }
    }

    /// The self-check invariant: every counter's windowed sum (plus the
    /// dropped-window base) must equal the caller's end-of-run total.
    /// Vacuously `Ok` when disabled. Call after [`Metrics::finish`].
    pub fn reconcile(&self, totals: &[u64; Ctr::COUNT]) -> Result<(), String> {
        #[cfg(feature = "metrics")]
        {
            if self.buf.is_none() {
                return Ok(());
            }
            for &c in Ctr::ALL.iter() {
                let got = self.total(c);
                let want = totals[c as usize];
                if got != want {
                    return Err(format!(
                        "windowed sum of `{}` is {} but the run total is {}",
                        c.name(),
                        got,
                        want
                    ));
                }
            }
            Ok(())
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = totals;
            Ok(())
        }
    }

    /// [`Metrics::reconcile`] against an end-of-run [`Stats`]: every
    /// interned counter's windowed sum must match the stats total.
    pub fn reconcile_stats(&self, stats: &Stats) -> Result<(), String> {
        let mut totals = [0u64; Ctr::COUNT];
        for &c in Ctr::ALL.iter() {
            totals[c as usize] = stats.get_ctr(c);
        }
        self.reconcile(&totals)
    }
}

#[cfg(all(test, feature = "metrics"))]
mod tests {
    use super::*;

    fn snap(cycles: u64, insns: u64) -> [u64; Ctr::COUNT] {
        let mut s = [0u64; Ctr::COUNT];
        s[Ctr::Cycles as usize] = cycles;
        s[Ctr::GuestInsns as usize] = insns;
        s
    }

    #[test]
    fn windows_close_on_the_fixed_grid() {
        let mut m = Metrics::new(MetricsConfig {
            interval: 100,
            max_windows: 16,
        });
        assert!(!m.due(Cycle(99)));
        assert!(m.due(Cycle(100)));
        m.sample(Cycle(130), &snap(130, 60), &[]);
        // A late check spanning several boundaries closes ONE window.
        m.sample(Cycle(450), &snap(450, 200), &[]);
        m.finish(Cycle(470), &snap(470, 210), &[]);
        let w: Vec<_> = m.windows().collect();
        assert_eq!(w.len(), 3);
        assert_eq!((w[0].start, w[0].end), (0, 100));
        assert_eq!((w[1].start, w[1].end), (100, 400));
        assert_eq!((w[2].start, w[2].end), (400, 470));
        assert_eq!(w[0].delta(Ctr::Cycles), 130, "delta is to the sample point");
        assert_eq!(w[1].delta(Ctr::Cycles), 320);
        assert_eq!(w[2].delta(Ctr::Cycles), 20);
        assert_eq!(m.total(Ctr::Cycles), 470);
        assert_eq!(m.total(Ctr::GuestInsns), 210);
        assert!(m.reconcile(&snap(470, 210)).is_ok());
        assert!(m.reconcile(&snap(470, 211)).is_err());
    }

    #[test]
    fn ring_drop_folds_into_dropped_totals() {
        let mut m = Metrics::new(MetricsConfig {
            interval: 10,
            max_windows: 3,
        });
        for i in 1..=8u64 {
            m.sample(Cycle(i * 10), &snap(i * 10, i * 5), &[]);
        }
        m.finish(Cycle(80), &snap(80, 40), &[]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.dropped(), 5);
        assert_eq!(m.dropped_totals()[Ctr::Cycles as usize], 50);
        assert!(m.reconcile(&snap(80, 40)).is_ok(), "exact despite drops");
    }

    #[test]
    fn wrapping_deltas_survive_shrinking_sources() {
        // translate.blocks can shrink when morphing retires a slave with
        // its counts; the telescoped sum must still hit the final total.
        let mut m = Metrics::new(MetricsConfig {
            interval: 10,
            max_windows: 16,
        });
        let mut s = snap(10, 0);
        s[Ctr::TranslateBlocks as usize] = 9;
        m.sample(Cycle(10), &s, &[]);
        let mut s2 = snap(20, 0);
        s2[Ctr::TranslateBlocks as usize] = 4; // slave retired mid-run
        m.sample(Cycle(20), &s2, &[]);
        let mut fin = snap(25, 0);
        fin[Ctr::TranslateBlocks as usize] = 6;
        m.finish(Cycle(25), &fin, &[]);
        let w: Vec<_> = m.windows().collect();
        assert_eq!(w[1].delta_i64(Ctr::TranslateBlocks), -5);
        assert_eq!(w[2].delta_i64(Ctr::TranslateBlocks), 2);
        assert!(m.reconcile(&fin).is_ok());
    }

    #[test]
    fn gauges_register_in_order_and_sample_by_id() {
        let mut m = Metrics::new(MetricsConfig {
            interval: 10,
            max_windows: 4,
        });
        let a = m.gauge("specq.depth");
        let b = m.gauge("pool.translators");
        assert_eq!(m.gauge("specq.depth"), a, "dedup by name");
        assert_eq!(m.gauge_count(), 2);
        m.sample(Cycle(10), &snap(10, 1), &[3, 2]);
        let w = m.windows().next().unwrap();
        assert_eq!(w.gauge(a), Some(3));
        assert_eq!(w.gauge(b), Some(2));
        assert_eq!(w.gauge(GaugeId(9)), None);
        let names: Vec<_> = m.gauges().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names, ["specq.depth", "pool.translators"]);
    }

    #[test]
    fn finish_seals_the_series() {
        let mut m = Metrics::new(MetricsConfig {
            interval: 10,
            max_windows: 4,
        });
        m.event(Cycle(5), "morph.to_translator", 40);
        m.finish(Cycle(12), &snap(12, 6), &[]);
        assert!(m.is_finished());
        let n = m.len();
        m.sample(Cycle(30), &snap(30, 15), &[]);
        m.event(Cycle(31), "late", 1);
        m.finish(Cycle(32), &snap(32, 16), &[]);
        assert_eq!(m.len(), n, "sealed: no new windows");
        assert_eq!(m.events().count(), 1, "sealed: no new events");
        assert!(!m.due(Cycle(1000)));
    }

    #[test]
    fn zero_length_finish_emits_no_empty_window() {
        let mut m = Metrics::new(MetricsConfig {
            interval: 10,
            max_windows: 4,
        });
        m.sample(Cycle(10), &snap(10, 5), &[]);
        m.finish(Cycle(10), &snap(10, 5), &[]);
        assert_eq!(m.len(), 1, "nothing happened after the last boundary");
        assert!(m.reconcile(&snap(10, 5)).is_ok());
    }

    #[test]
    fn window_derived_rates() {
        let mut w = Window {
            start: 0,
            end: 100,
            ctrs: [0; Ctr::COUNT],
            gauges: Vec::new(),
        };
        assert_eq!(w.cpi(), None);
        assert_eq!(w.miss_rate(Ctr::L1CodeMiss, Ctr::L1CodeHit), None);
        w.ctrs[Ctr::Cycles as usize] = 300;
        w.ctrs[Ctr::GuestInsns as usize] = 100;
        w.ctrs[Ctr::L1CodeMiss as usize] = 1;
        w.ctrs[Ctr::L1CodeHit as usize] = 3;
        assert_eq!(w.cpi(), Some(3.0));
        assert_eq!(w.miss_rate(Ctr::L1CodeMiss, Ctr::L1CodeHit), Some(0.25));
    }

    #[test]
    fn events_are_capped() {
        let mut m = Metrics::new(MetricsConfig {
            interval: 10,
            max_windows: 2,
        });
        for i in 0..5u64 {
            m.event(Cycle(i), "x", i);
        }
        assert_eq!(m.events().count(), 2);
        assert_eq!(m.events_dropped(), 3);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut m = Metrics::disabled();
        assert!(!m.is_enabled());
        let g = m.gauge("x");
        assert!(!m.due(Cycle(1_000_000)));
        m.sample(Cycle(100), &snap(100, 50), &[0]);
        m.event(Cycle(1), "e", 2);
        m.finish(Cycle(200), &snap(200, 100), &[0]);
        assert!(m.is_empty());
        assert_eq!(m.gauge_count(), 0);
        assert_eq!(g, GaugeId::default());
        assert_eq!(m.interval(), 0);
        assert!(
            m.reconcile(&snap(200, 100)).is_ok(),
            "vacuous when disabled"
        );
    }
}
