use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A monotonic queue of future events keyed by completion [`Cycle`].
///
/// Components that start a multi-cycle operation (a DRAM access, a cache
/// flush during morphing) schedule its completion here and pick it up once
/// the global clock reaches the due cycle. Events scheduled for the same
/// cycle are delivered in insertion order, which keeps the simulation
/// deterministic.
///
/// # Examples
///
/// ```
/// use vta_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle(4), 'a');
/// q.schedule(Cycle(4), 'b');
/// q.schedule(Cycle(2), 'c');
/// assert_eq!(q.pop_ready(Cycle(4)), Some('c'));
/// assert_eq!(q.pop_ready(Cycle(4)), Some('a'));
/// assert_eq!(q.pop_ready(Cycle(4)), Some('b'));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    due: Cycle,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` to become ready at cycle `due`.
    pub fn schedule(&mut self, due: Cycle, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { due, seq, payload }));
    }

    /// Pops the earliest event whose due cycle is `<= now`, if any.
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.due <= now) {
            self.heap.pop().map(|Reverse(e)| e.payload)
        } else {
            None
        }
    }

    /// The due cycle of the earliest pending event, if any.
    pub fn next_due(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(9), 9);
        q.schedule(Cycle(1), 1);
        q.schedule(Cycle(5), 5);
        assert_eq!(q.next_due(), Some(Cycle(1)));
        assert_eq!(q.pop_ready(Cycle(10)), Some(1));
        assert_eq!(q.pop_ready(Cycle(10)), Some(5));
        assert_eq!(q.pop_ready(Cycle(10)), Some(9));
    }

    #[test]
    fn not_ready_before_due() {
        let mut q = EventQueue::new();
        q.schedule(Cycle(5), ());
        assert_eq!(q.pop_ready(Cycle(4)), None);
        assert_eq!(q.pop_ready(Cycle(5)), Some(()));
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle(3), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop_ready(Cycle(3)), Some(i));
        }
    }

    #[test]
    fn len_tracks_pending() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycle(1), ());
        q.schedule(Cycle(2), ());
        assert_eq!(q.len(), 2);
        q.pop_ready(Cycle(2));
        assert_eq!(q.len(), 1);
    }
}
