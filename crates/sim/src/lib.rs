//! # vta-sim — simulation kernel for the VTA tiled-processor reproduction
//!
//! Shared infrastructure used by every simulated component in this
//! workspace: a [`Cycle`] clock newtype, a deterministic [`Rng`]
//! (xoshiro256\*\*), an ordered [`EventQueue`] for future completions, and a
//! [`Stats`] registry of named counters and histograms.
//!
//! The simulators built on top of this crate are *cycle-driven*: components
//! are ticked under a global clock and charge work in whole cycles. The
//! event queue exists for sparse future events (DRAM completions, morphing
//! timers) so components do not need to poll.
//!
//! # Examples
//!
//! ```
//! use vta_sim::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.schedule(Cycle(10), "dram refill");
//! q.schedule(Cycle(3), "tlb fill");
//! assert_eq!(q.pop_ready(Cycle(5)), Some("tlb fill"));
//! assert_eq!(q.pop_ready(Cycle(5)), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cycle;
mod event;
pub mod metrics;
pub mod prof;
mod rng;
mod stats;
pub mod trace;

pub use cycle::Cycle;
pub use event::EventQueue;
pub use metrics::{GaugeId, MetricEvent, Metrics, MetricsConfig, Window};
pub use prof::{
    PhaseTotal, ProfConfig, ProfEvent, ProfileReport, Profiler, ThreadProf, ThreadProfile,
};
pub use rng::Rng;
pub use stats::{Ctr, Histogram, Stats};
pub use trace::{Coord, LinkStats, TraceConfig, TraceEvent, Tracer, TrackId};
