//! Cycle-accurate tracing: typed events in a preallocated ring buffer.
//!
//! The [`Tracer`] records *observations* of a running simulation — spans of
//! busy time on a track (one track per tile or shared resource), instant
//! markers, counter samples, and per-message network events. It is designed
//! around two hard requirements:
//!
//! 1. **Recording never changes simulated time.** The tracer is write-only
//!    from the simulator's point of view: every emit method takes the
//!    timestamps the caller already computed and stores them. No emit method
//!    returns anything a simulator could branch on.
//! 2. **Disabled tracing costs (almost) nothing.** At runtime a disabled
//!    tracer ([`Tracer::disabled`]) is one branch per emit. With the `trace`
//!    cargo feature off the struct is zero-sized and every method compiles
//!    to an empty body, so the hot path is bit-for-bit what it was before
//!    this module existed.
//!
//! Event storage is a fixed-capacity ring: when full, the *oldest* events
//! are overwritten (and counted in [`Tracer::dropped`]) so the tail of a
//! long run is always available. Aggregates that feed utilization reports —
//! per-track busy cycles, per-link traffic, counter [`Histogram`]s — are
//! accumulated outside the ring and are exact regardless of drops.
//!
//! # Examples
//!
//! ```
//! use vta_sim::{Cycle, TraceConfig, Tracer};
//!
//! let mut t = Tracer::new(TraceConfig::default());
//! let track = t.track("tile(1,1) exec");
//! t.span(Cycle(10), 5, track, "block");
//! t.counter(Cycle(15), track, 3);
//! // With the `trace` feature off every emit is a no-op.
//! if cfg!(feature = "trace") {
//!     assert_eq!(t.busy_cycles(track), 5);
//!     assert_eq!(t.events().count(), 2);
//! } else {
//!     assert_eq!(t.events().count(), 0);
//! }
//!
//! // A disabled tracer accepts the same calls and records nothing.
//! let mut off = Tracer::disabled();
//! let tr = off.track("tile(1,1) exec");
//! off.span(Cycle(10), 5, tr, "block");
//! assert_eq!(off.events().count(), 0);
//! ```

use crate::{Cycle, Histogram};
#[cfg(feature = "trace")]
use std::collections::BTreeMap;

/// Configuration for a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity in events. When the ring is full the oldest events are
    /// overwritten; [`Tracer::dropped`] counts how many were lost.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 1 << 16 }
    }
}

/// Opaque handle for one registered track (a timeline row in the export:
/// one per tile, plus synthetic rows for counters and the network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TrackId(pub u16);

/// Grid coordinate of a tile in a network event.
///
/// `vta-sim` sits below the crate that defines tile ids, so network
/// endpoints are recorded as bare (x, y) pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    /// Column on the grid.
    pub x: u8,
    /// Row on the grid.
    pub y: u8,
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Aggregate traffic over one directed network link (source, destination).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Messages sent over the link.
    pub msgs: u64,
    /// Total payload words carried.
    pub words: u64,
}

/// One recorded trace event. Timestamps and durations are in simulated
/// cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A complete span: `track` was busy with `name` for `dur` cycles
    /// starting at `ts`.
    Span {
        /// Start cycle.
        ts: u64,
        /// Duration in cycles.
        dur: u64,
        /// Track the work ran on.
        track: TrackId,
        /// What the track was doing.
        name: &'static str,
    },
    /// Opens a span whose end is not yet known; matched by the next
    /// [`TraceEvent::SpanEnd`] on the same track.
    SpanBegin {
        /// Start cycle.
        ts: u64,
        /// Track the work runs on.
        track: TrackId,
        /// What the track is doing.
        name: &'static str,
    },
    /// Closes the most recent open [`TraceEvent::SpanBegin`] on `track`.
    SpanEnd {
        /// End cycle.
        ts: u64,
        /// Track whose open span ends.
        track: TrackId,
    },
    /// A point-in-time marker with one numeric argument.
    Instant {
        /// Cycle the event happened at.
        ts: u64,
        /// Track to attach the marker to.
        track: TrackId,
        /// Marker name.
        name: &'static str,
        /// Free-form numeric argument (e.g. a queue length or word count).
        arg: u64,
    },
    /// A sampled counter value (e.g. speculation queue depth).
    Counter {
        /// Cycle the sample was taken at.
        ts: u64,
        /// Counter track the sample belongs to.
        track: TrackId,
        /// Sampled value.
        value: u64,
    },
    /// One network message: injected at `ts`, delivered `dur` cycles later.
    NetMsg {
        /// Injection cycle at the source tile.
        ts: u64,
        /// End-to-end latency in cycles (including queueing).
        dur: u64,
        /// Source tile.
        src: Coord,
        /// Destination tile.
        dst: Coord,
        /// Payload words.
        words: u32,
        /// Manhattan hop count.
        hops: u8,
    },
}

impl TraceEvent {
    /// The timestamp of the event, in cycles.
    pub fn ts(&self) -> u64 {
        match *self {
            TraceEvent::Span { ts, .. }
            | TraceEvent::SpanBegin { ts, .. }
            | TraceEvent::SpanEnd { ts, .. }
            | TraceEvent::Instant { ts, .. }
            | TraceEvent::Counter { ts, .. }
            | TraceEvent::NetMsg { ts, .. } => ts,
        }
    }
}

#[cfg(feature = "trace")]
#[derive(Debug, Default)]
struct TrackMeta {
    name: String,
    /// Total cycles covered by spans on this track (exact even when the
    /// ring has dropped events).
    busy: u64,
    /// Start cycle of the currently open `SpanBegin`, if any.
    open_since: Option<u64>,
    /// Distribution of `Counter` samples on this track, if any were taken.
    hist: Option<Histogram>,
}

#[cfg(feature = "trace")]
#[derive(Debug)]
struct Buf {
    ring: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
    tracks: Vec<TrackMeta>,
    by_name: BTreeMap<String, TrackId>,
    links: BTreeMap<(Coord, Coord), LinkStats>,
}

#[cfg(feature = "trace")]
impl Buf {
    fn new(cfg: TraceConfig) -> Self {
        Buf {
            ring: Vec::with_capacity(cfg.capacity.max(1)),
            capacity: cfg.capacity.max(1),
            head: 0,
            dropped: 0,
            tracks: Vec::new(),
            by_name: BTreeMap::new(),
            links: BTreeMap::new(),
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, start) = self.ring.split_at(self.head);
        start.iter().chain(wrapped.iter())
    }
}

/// Records simulation trace events; see the [module docs](self) for the
/// design constraints.
///
/// Obtain one with [`Tracer::new`] (recording) or [`Tracer::disabled`]
/// (every call is a cheap no-op). With the `trace` cargo feature off, both
/// are zero-sized no-ops.
#[derive(Debug, Default)]
pub struct Tracer {
    #[cfg(feature = "trace")]
    buf: Option<Box<Buf>>,
}

impl Tracer {
    /// A recording tracer with a preallocated ring of `cfg.capacity` events.
    ///
    /// With the `trace` cargo feature off this is the same as
    /// [`Tracer::disabled`].
    pub fn new(cfg: TraceConfig) -> Self {
        #[cfg(feature = "trace")]
        {
            Tracer {
                buf: Some(Box::new(Buf::new(cfg))),
            }
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = cfg;
            Tracer {}
        }
    }

    /// A tracer that records nothing; every emit is one branch.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// True when events are actually being recorded.
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "trace")]
        {
            self.buf.is_some()
        }
        #[cfg(not(feature = "trace"))]
        {
            false
        }
    }

    /// Registers (or looks up) the track named `name` and returns its id.
    ///
    /// Track names are deduplicated: registering the same name twice
    /// returns the same [`TrackId`], so idempotent setup code is safe.
    /// On a disabled tracer this returns `TrackId::default()`.
    pub fn track(&mut self, name: &str) -> TrackId {
        #[cfg(feature = "trace")]
        if let Some(b) = self.buf.as_deref_mut() {
            if let Some(&id) = b.by_name.get(name) {
                return id;
            }
            let id = TrackId(b.tracks.len() as u16);
            b.tracks.push(TrackMeta {
                name: name.to_string(),
                ..TrackMeta::default()
            });
            b.by_name.insert(name.to_string(), id);
            return id;
        }
        #[cfg(not(feature = "trace"))]
        let _ = name;
        TrackId::default()
    }

    /// Records a complete span of `dur` busy cycles on `track`.
    #[inline]
    pub fn span(&mut self, ts: Cycle, dur: u64, track: TrackId, name: &'static str) {
        #[cfg(feature = "trace")]
        if let Some(b) = self.buf.as_deref_mut() {
            if let Some(m) = b.tracks.get_mut(track.0 as usize) {
                m.busy += dur;
            }
            b.push(TraceEvent::Span {
                ts: ts.0,
                dur,
                track,
                name,
            });
        }
        #[cfg(not(feature = "trace"))]
        let _ = (ts, dur, track, name);
    }

    /// Opens a span on `track`; close it with [`Tracer::span_end`].
    #[inline]
    pub fn span_begin(&mut self, ts: Cycle, track: TrackId, name: &'static str) {
        #[cfg(feature = "trace")]
        if let Some(b) = self.buf.as_deref_mut() {
            if let Some(m) = b.tracks.get_mut(track.0 as usize) {
                m.open_since = Some(ts.0);
            }
            b.push(TraceEvent::SpanBegin {
                ts: ts.0,
                track,
                name,
            });
        }
        #[cfg(not(feature = "trace"))]
        let _ = (ts, track, name);
    }

    /// Closes the open span on `track` (no-op if none is open).
    #[inline]
    pub fn span_end(&mut self, ts: Cycle, track: TrackId) {
        #[cfg(feature = "trace")]
        if let Some(b) = self.buf.as_deref_mut() {
            if let Some(m) = b.tracks.get_mut(track.0 as usize) {
                if let Some(since) = m.open_since.take() {
                    m.busy += ts.0.saturating_sub(since);
                }
            }
            b.push(TraceEvent::SpanEnd { ts: ts.0, track });
        }
        #[cfg(not(feature = "trace"))]
        let _ = (ts, track);
    }

    /// Records a point-in-time marker on `track`.
    #[inline]
    pub fn instant(&mut self, ts: Cycle, track: TrackId, name: &'static str, arg: u64) {
        #[cfg(feature = "trace")]
        if let Some(b) = self.buf.as_deref_mut() {
            b.push(TraceEvent::Instant {
                ts: ts.0,
                track,
                name,
                arg,
            });
        }
        #[cfg(not(feature = "trace"))]
        let _ = (ts, track, name, arg);
    }

    /// Records a counter sample on `track`; samples also feed the track's
    /// [`Histogram`] (see [`Tracer::counter_histogram`]).
    #[inline]
    pub fn counter(&mut self, ts: Cycle, track: TrackId, value: u64) {
        #[cfg(feature = "trace")]
        if let Some(b) = self.buf.as_deref_mut() {
            if let Some(m) = b.tracks.get_mut(track.0 as usize) {
                m.hist.get_or_insert_with(Histogram::new).record(value);
            }
            b.push(TraceEvent::Counter {
                ts: ts.0,
                track,
                value,
            });
        }
        #[cfg(not(feature = "trace"))]
        let _ = (ts, track, value);
    }

    /// Records one network message and accumulates its link traffic.
    #[inline]
    pub fn net_msg(&mut self, ts: Cycle, dur: u64, src: Coord, dst: Coord, words: u32, hops: u8) {
        #[cfg(feature = "trace")]
        if let Some(b) = self.buf.as_deref_mut() {
            let link = b.links.entry((src, dst)).or_default();
            link.msgs += 1;
            link.words += u64::from(words);
            b.push(TraceEvent::NetMsg {
                ts: ts.0,
                dur,
                src,
                dst,
                words,
                hops,
            });
        }
        #[cfg(not(feature = "trace"))]
        let _ = (ts, dur, src, dst, words, hops);
    }

    /// The recorded events, oldest first. When the ring has wrapped, only
    /// the newest [`Tracer::capacity`] events remain.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        #[cfg(feature = "trace")]
        {
            self.buf.as_deref().into_iter().flat_map(Buf::iter)
        }
        #[cfg(not(feature = "trace"))]
        {
            std::iter::empty()
        }
    }

    /// All registered tracks as `(id, name)`, in registration order.
    pub fn tracks(&self) -> impl Iterator<Item = (TrackId, &str)> {
        #[cfg(feature = "trace")]
        {
            self.buf.as_deref().into_iter().flat_map(|b| {
                b.tracks
                    .iter()
                    .enumerate()
                    .map(|(i, m)| (TrackId(i as u16), m.name.as_str()))
            })
        }
        #[cfg(not(feature = "trace"))]
        {
            std::iter::empty()
        }
    }

    /// Total span cycles accumulated on `track` (exact even when the ring
    /// has dropped events).
    pub fn busy_cycles(&self, track: TrackId) -> u64 {
        #[cfg(feature = "trace")]
        {
            self.buf
                .as_deref()
                .and_then(|b| b.tracks.get(track.0 as usize))
                .map_or(0, |m| m.busy)
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = track;
            0
        }
    }

    /// Distribution of [`Tracer::counter`] samples taken on `track`, if any.
    pub fn counter_histogram(&self, track: TrackId) -> Option<&Histogram> {
        #[cfg(feature = "trace")]
        {
            self.buf
                .as_deref()
                .and_then(|b| b.tracks.get(track.0 as usize))
                .and_then(|m| m.hist.as_ref())
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = track;
            None
        }
    }

    /// Aggregate traffic per directed link, in deterministic (src, dst)
    /// order. Exact even when the ring has dropped events.
    pub fn links(&self) -> impl Iterator<Item = (Coord, Coord, LinkStats)> + '_ {
        #[cfg(feature = "trace")]
        {
            self.buf
                .as_deref()
                .into_iter()
                .flat_map(|b| b.links.iter().map(|(&(s, d), &st)| (s, d, st)))
        }
        #[cfg(not(feature = "trace"))]
        {
            std::iter::empty()
        }
    }

    /// Number of events currently held in the ring.
    pub fn len(&self) -> usize {
        #[cfg(feature = "trace")]
        {
            self.buf.as_deref().map_or(0, |b| b.ring.len())
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// True when no events have been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ring capacity in events (0 when disabled).
    pub fn capacity(&self) -> usize {
        #[cfg(feature = "trace")]
        {
            self.buf.as_deref().map_or(0, |b| b.capacity)
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }

    /// Events lost to ring overwrite since creation.
    pub fn dropped(&self) -> u64 {
        #[cfg(feature = "trace")]
        {
            self.buf.as_deref().map_or(0, |b| b.dropped)
        }
        #[cfg(not(feature = "trace"))]
        {
            0
        }
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    fn c(x: u8, y: u8) -> Coord {
        Coord { x, y }
    }

    #[test]
    fn track_registration_dedups_by_name() {
        let mut t = Tracer::new(TraceConfig::default());
        let a = t.track("tile(0,0) exec");
        let b = t.track("tile(1,0) mmu");
        let a2 = t.track("tile(0,0) exec");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        let names: Vec<_> = t.tracks().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names, ["tile(0,0) exec", "tile(1,0) mmu"]);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut t = Tracer::new(TraceConfig { capacity: 4 });
        let tr = t.track("x");
        for i in 0..6u64 {
            t.instant(Cycle(i), tr, "tick", i);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 2);
        let ts: Vec<u64> = t.events().map(|e| e.ts()).collect();
        assert_eq!(ts, [2, 3, 4, 5], "oldest events were evicted first");
    }

    #[test]
    fn busy_cycles_survive_ring_overwrite() {
        let mut t = Tracer::new(TraceConfig { capacity: 2 });
        let tr = t.track("svc");
        for i in 0..10u64 {
            t.span(Cycle(i * 10), 3, tr, "work");
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.busy_cycles(tr), 30, "aggregate is exact despite drops");
    }

    #[test]
    fn begin_end_accumulates_busy() {
        let mut t = Tracer::new(TraceConfig::default());
        let tr = t.track("svc");
        t.span_begin(Cycle(5), tr, "phase");
        t.span_end(Cycle(12), tr);
        assert_eq!(t.busy_cycles(tr), 7);
        // Unmatched end is harmless.
        t.span_end(Cycle(20), tr);
        assert_eq!(t.busy_cycles(tr), 7);
    }

    #[test]
    fn counters_feed_histogram() {
        let mut t = Tracer::new(TraceConfig::default());
        let tr = t.track("specq.depth");
        for v in [1u64, 2, 4, 8] {
            t.counter(Cycle(v), tr, v);
        }
        let h = t.counter_histogram(tr).expect("samples were taken");
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 8);
        assert!(t.counter_histogram(TrackId(99)).is_none());
    }

    #[test]
    fn links_aggregate_traffic() {
        let mut t = Tracer::new(TraceConfig { capacity: 2 });
        for i in 0..5u64 {
            t.net_msg(Cycle(i), 6, c(0, 0), c(2, 1), 4, 3);
        }
        t.net_msg(Cycle(9), 4, c(2, 1), c(0, 0), 1, 3);
        let links: Vec<_> = t.links().collect();
        assert_eq!(links.len(), 2);
        let (s, d, st) = links[0];
        assert_eq!((s, d), (c(0, 0), c(2, 1)));
        assert_eq!((st.msgs, st.words), (5, 20), "exact despite ring drops");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        let tr = t.track("x");
        t.span(Cycle(0), 5, tr, "a");
        t.counter(Cycle(1), tr, 2);
        t.net_msg(Cycle(2), 3, c(0, 0), c(1, 1), 1, 2);
        assert!(t.is_empty());
        assert_eq!(t.busy_cycles(tr), 0);
        assert_eq!(t.tracks().count(), 0);
        assert_eq!(t.links().count(), 0);
    }
}
