use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, measured in host (Raw) clock cycles.
///
/// The paper compares architectures clock-for-clock (§4.1), so one [`Cycle`]
/// is simultaneously one Raw cycle and one Pentium III cycle. The newtype
/// keeps cycle arithmetic from being confused with instruction counts or
/// byte addresses.
///
/// # Examples
///
/// ```
/// use vta_sim::Cycle;
///
/// let start = Cycle(100);
/// let end = start + 25;
/// assert_eq!(end - start, 25);
/// assert!(end > start);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero cycle, i.e. simulation start.
    pub const ZERO: Cycle = Cycle(0);

    /// Returns the raw cycle count.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`, zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl SubAssign<u64> for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: u64) {
        self.0 -= rhs;
    }
}

impl Sum<u64> for Cycle {
    fn sum<I: Iterator<Item = u64>>(iter: I) -> Cycle {
        Cycle(iter.sum())
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let c = Cycle(7) + 5;
        assert_eq!(c, Cycle(12));
        assert_eq!(c - Cycle(7), 5);
    }

    #[test]
    fn saturating_since_clamps() {
        assert_eq!(Cycle(3).saturating_since(Cycle(10)), 0);
        assert_eq!(Cycle(10).saturating_since(Cycle(3)), 7);
    }

    #[test]
    fn ordering_follows_time() {
        assert!(Cycle(1) < Cycle(2));
        assert_eq!(Cycle::ZERO, Cycle(0));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle(42).to_string(), "42 cyc");
    }
}
