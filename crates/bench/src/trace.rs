//! Trace consumers: Chrome-trace-event export and utilization reports.
//!
//! The simulator's [`Tracer`] records what every tile was doing each
//! cycle; this module turns a finished trace into things a human can
//! look at:
//!
//! - [`chrome_trace_json`] emits the Chrome trace-event format (JSON
//!   array form), which both `chrome://tracing` and
//!   [Perfetto](https://ui.perfetto.dev) open directly. One track
//!   ("thread") per tile, plus a synthetic network track and counter
//!   tracks.
//! - [`utilization_report`] renders a plain-text summary: per-tile busy
//!   percentages, the busiest network links, and queue-depth
//!   percentiles.
//!
//! Both are hand-rolled (no serde): the workspace has a
//! zero-external-dependency policy.

use std::fmt::Write as _;

use vta_dbt::{RunReport, System, VirtualArchConfig};
use vta_sim::{Ctr, Metrics, ProfileReport, TraceConfig, TraceEvent, Tracer};
use vta_workloads::Scale;

/// Runs `bench` at `scale` under `cfg` with tracing enabled; returns the
/// run report and the captured trace.
///
/// # Panics
///
/// Panics if the benchmark is unknown or the guest faults.
pub fn trace_benchmark(
    bench: &str,
    scale: Scale,
    cfg: VirtualArchConfig,
    capacity: usize,
) -> (RunReport, Tracer) {
    let w =
        vta_workloads::by_name(bench, scale).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let mut system = System::new(cfg, &w.image);
    system.enable_tracing(TraceConfig { capacity });
    let report = system
        .run(crate::RUN_BUDGET)
        .unwrap_or_else(|e| panic!("{bench}: {e}"));
    (report, system.take_tracer())
}

fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders the trace in Chrome trace-event JSON (array form).
///
/// Open the file at <https://ui.perfetto.dev> or `chrome://tracing`.
/// Cycles are mapped 1:1 onto the format's microsecond timestamps, so
/// Perfetto's time axis reads directly in simulated cycles. Each tracer
/// track becomes a named thread; network messages live on a synthetic
/// `network` thread with source/destination/hops/words as arguments.
pub fn chrome_trace_json(tracer: &Tracer) -> String {
    chrome_trace_json_with_metrics(tracer, None)
}

/// Like [`chrome_trace_json`], optionally merging a windowed metrics
/// series into the export as Perfetto **counter tracks** (`"ph":"C"`):
/// per-window guest-instruction throughput and CPI, every registered
/// gauge, and the series' point annotations as instants on a synthetic
/// `metrics` thread.
pub fn chrome_trace_json_with_metrics(tracer: &Tracer, metrics: Option<&Metrics>) -> String {
    chrome_trace_json_two_clock(tracer, metrics, None)
}

/// The full two-clock-domain export: simulated-cycle tracks (process 1,
/// where `ts` reads in cycles) merged with the host wall-clock profile
/// (process 2, where `ts` reads in real microseconds). Perfetto shows
/// both processes on one timeline; the `process_name` metadata labels
/// which clock each group of tracks is on. The host tracks carry the
/// profiler's **inclusive** timeline spans, so nested phases render as
/// nested slices.
pub fn chrome_trace_json_two_clock(
    tracer: &Tracer,
    metrics: Option<&Metrics>,
    profile: Option<&ProfileReport>,
) -> String {
    let mut out = String::from("[\n");
    let pid = 1u32;
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, line: &str| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(line);
    };

    // Thread-name metadata: one per track, plus the synthetic net track.
    let net_tid = tracer
        .tracks()
        .map(|(id, _)| id.0 as u32 + 1)
        .max()
        .unwrap_or(0)
        + 1;
    for (id, name) in tracer.tracks() {
        let mut line = format!(
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{},\"args\":{{\"name\":\"",
            id.0 as u32 + 1
        );
        json_escape(&mut line, name);
        line.push_str("\"}}");
        push(&mut out, &mut first, &line);
    }
    push(
        &mut out,
        &mut first,
        &format!(
            "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{net_tid},\
             \"args\":{{\"name\":\"network\"}}}}"
        ),
    );

    for ev in tracer.events() {
        let line = match *ev {
            TraceEvent::Span {
                ts,
                dur,
                track,
                name,
            } => {
                let mut l = String::from("  {\"name\":\"");
                json_escape(&mut l, name);
                let _ = write!(
                    l,
                    "\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{ts},\"dur\":{dur}}}",
                    track.0 as u32 + 1
                );
                l
            }
            TraceEvent::SpanBegin { ts, track, name } => {
                let mut l = String::from("  {\"name\":\"");
                json_escape(&mut l, name);
                let _ = write!(
                    l,
                    "\",\"ph\":\"B\",\"pid\":{pid},\"tid\":{},\"ts\":{ts}}}",
                    track.0 as u32 + 1
                );
                l
            }
            TraceEvent::SpanEnd { ts, track } => format!(
                "  {{\"ph\":\"E\",\"pid\":{pid},\"tid\":{},\"ts\":{ts}}}",
                track.0 as u32 + 1
            ),
            TraceEvent::Instant {
                ts,
                track,
                name,
                arg,
            } => {
                let mut l = String::from("  {\"name\":\"");
                json_escape(&mut l, name);
                let _ = write!(
                    l,
                    "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{},\"ts\":{ts},\
                     \"args\":{{\"value\":{arg}}}}}",
                    track.0 as u32 + 1
                );
                l
            }
            TraceEvent::Counter { ts, track, value } => {
                let name = tracer
                    .tracks()
                    .find(|(id, _)| *id == track)
                    .map(|(_, n)| n.to_string())
                    .unwrap_or_else(|| format!("counter{}", track.0));
                let mut l = String::from("  {\"name\":\"");
                json_escape(&mut l, &name);
                let _ = write!(
                    l,
                    "\",\"ph\":\"C\",\"pid\":{pid},\"ts\":{ts},\
                     \"args\":{{\"value\":{value}}}}}"
                );
                l
            }
            TraceEvent::NetMsg {
                ts,
                dur,
                src,
                dst,
                words,
                hops,
            } => format!(
                "  {{\"name\":\"{src}->{dst}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{net_tid},\
                 \"ts\":{ts},\"dur\":{},\"args\":{{\"src\":\"{src}\",\"dst\":\"{dst}\",\
                 \"hops\":{hops},\"words\":{words}}}}}",
                dur.max(1)
            ),
        };
        push(&mut out, &mut first, &line);
    }

    // Windowed-metrics counter tracks: one "C" sample per window close.
    if let Some(m) = metrics.filter(|m| m.is_enabled()) {
        let met_tid = net_tid + 1;
        push(
            &mut out,
            &mut first,
            &format!(
                "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{met_tid},\
                 \"args\":{{\"name\":\"metrics\"}}}}"
            ),
        );
        let counter = |out: &mut String, first: &mut bool, name: &str, ts: u64, value: &str| {
            let mut l = String::from("  {\"name\":\"");
            json_escape(&mut l, name);
            let _ = write!(
                l,
                "\",\"ph\":\"C\",\"pid\":{pid},\"ts\":{ts},\"args\":{{\"value\":{value}}}}}"
            );
            push(out, first, &l);
        };
        for w in m.windows() {
            counter(
                &mut out,
                &mut first,
                "metric.guest_insns",
                w.end,
                &w.delta(Ctr::GuestInsns).to_string(),
            );
            if let Some(cpi) = w.cpi() {
                counter(
                    &mut out,
                    &mut first,
                    "metric.cpi",
                    w.end,
                    &format!("{cpi:.3}"),
                );
            }
            for (id, name) in m.gauges() {
                if let Some(v) = w.gauge(id) {
                    counter(
                        &mut out,
                        &mut first,
                        &format!("gauge.{name}"),
                        w.end,
                        &v.to_string(),
                    );
                }
            }
        }
        for e in m.events() {
            let mut l = String::from("  {\"name\":\"");
            json_escape(&mut l, e.name);
            let _ = write!(
                l,
                "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{met_tid},\"ts\":{},\
                 \"args\":{{\"value\":{}}}}}",
                e.ts, e.value
            );
            push(&mut out, &mut first, &l);
        }
    }

    // Host wall-clock tracks: a second process so the two clock
    // domains stay visually separate while sharing one timeline.
    if let Some(p) = profile.filter(|p| !p.threads.is_empty()) {
        let host_pid = pid + 1;
        push(
            &mut out,
            &mut first,
            &format!(
                "  {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"simulated fabric (ts = cycles)\"}}}}"
            ),
        );
        push(
            &mut out,
            &mut first,
            &format!(
                "  {{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{host_pid},\"tid\":0,\
                 \"args\":{{\"name\":\"host wall clock (ts = real \\u00b5s)\"}}}}"
            ),
        );
        for (i, t) in p.threads.iter().enumerate() {
            let tid = i as u32 + 1;
            let mut line = format!(
                "  {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{host_pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\""
            );
            json_escape(&mut line, &t.name);
            line.push_str("\"}}");
            push(&mut out, &mut first, &line);
            for ev in &t.events {
                let mut l = String::from("  {\"name\":\"");
                json_escape(&mut l, ev.phase);
                let _ = write!(
                    l,
                    "\",\"ph\":\"X\",\"pid\":{host_pid},\"tid\":{tid},\"ts\":{:.3},\
                     \"dur\":{:.3}}}",
                    ev.start_nanos as f64 / 1e3,
                    (ev.dur_nanos as f64 / 1e3).max(0.001)
                );
                push(&mut out, &mut first, &l);
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Renders a plain-text utilization summary of a traced run.
///
/// Shows each track's busy percentage of `total_cycles` (spans only —
/// service occupancy, not message transit), the top network links by
/// words moved, and percentiles for every counter track (e.g. the
/// speculation-queue depth).
pub fn utilization_report(tracer: &Tracer, total_cycles: u64) -> String {
    let mut out = String::new();
    let total = total_cycles.max(1);
    let _ = writeln!(out, "== Utilization over {total_cycles} cycles ==");

    let mut busy: Vec<(String, u64)> = tracer
        .tracks()
        .map(|(id, name)| (name.to_string(), tracer.busy_cycles(id)))
        .filter(|(_, b)| *b > 0)
        .collect();
    busy.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    for (name, cycles) in &busy {
        let _ = writeln!(
            out,
            "  {name:<18} busy {:>6.2}%  ({cycles} cycles)",
            *cycles as f64 * 100.0 / total as f64
        );
    }

    let mut links: Vec<_> = tracer.links().collect();
    links.sort_by(|a, b| {
        b.2.words
            .cmp(&a.2.words)
            .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
    });
    if !links.is_empty() {
        let _ = writeln!(out, "-- top links by traffic --");
        for (src, dst, stats) in links.iter().take(10) {
            let _ = writeln!(
                out,
                "  {src}->{dst:<8} {:>10} words in {:>8} msgs",
                stats.words, stats.msgs
            );
        }
    }

    let mut counters: Vec<(String, &vta_sim::Histogram)> = tracer
        .tracks()
        .filter_map(|(id, name)| tracer.counter_histogram(id).map(|h| (name.to_string(), h)))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, h) in counters {
        let _ = writeln!(
            out,
            "  {name:<18} p50 {} p90 {} p99 {} max {} ({} samples)",
            h.percentile(0.50),
            h.percentile(0.90),
            h.percentile(0.99),
            h.max(),
            h.count()
        );
    }

    if tracer.dropped() > 0 {
        let _ = writeln!(
            out,
            "  note: ring dropped {} oldest events (capacity {}); busy%/links/percentiles \
             are exact side-aggregates and unaffected",
            tracer.dropped(),
            tracer.capacity()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "trace")]
    use vta_sim::Cycle;

    #[cfg(feature = "trace")]
    fn sample_tracer() -> Tracer {
        let mut tr = Tracer::new(TraceConfig { capacity: 64 });
        let a = tr.track("tile(0,0) exec");
        let q = tr.track("specq.depth");
        tr.span(Cycle(10), 5, a, "block");
        tr.instant(Cycle(12), a, "l1code.flush \"quoted\"", 7);
        tr.counter(Cycle(15), q, 3);
        tr.net_msg(
            Cycle(16),
            4,
            vta_sim::Coord { x: 0, y: 0 },
            vta_sim::Coord { x: 1, y: 0 },
            2,
            1,
        );
        tr
    }

    // Event-content assertions only hold when the tracer records.
    #[cfg(feature = "trace")]
    #[test]
    fn chrome_json_is_well_formed() {
        let s = chrome_trace_json(&sample_tracer());
        crate::json_lint::check(&s).expect("valid JSON");
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"C\""));
        assert!(s.contains("thread_name"));
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("(0,0)->(1,0)"));
    }

    #[test]
    fn disabled_tracer_exports_empty_but_valid() {
        let s = chrome_trace_json(&Tracer::disabled());
        crate::json_lint::check(&s).expect("valid JSON");
        let r = utilization_report(&Tracer::disabled(), 100);
        assert!(r.contains("Utilization"));
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn metrics_merge_adds_counter_tracks() {
        use vta_sim::{Ctr, Metrics, MetricsConfig};
        let mut m = Metrics::new(MetricsConfig {
            interval: 50,
            max_windows: 8,
        });
        m.gauge("specq.len");
        let mut snap = [0u64; Ctr::COUNT];
        snap[Ctr::Cycles as usize] = 50;
        snap[Ctr::GuestInsns as usize] = 25;
        m.sample(vta_sim::Cycle(50), &snap, &[3]);
        m.event(vta_sim::Cycle(60), "morph.to_translator", 40);
        m.finish(vta_sim::Cycle(70), &snap, &[1]);
        let s = chrome_trace_json_with_metrics(&Tracer::disabled(), Some(&m));
        crate::json_lint::check(&s).expect("valid JSON");
        assert!(s.contains("\"name\":\"metric.cpi\""));
        assert!(s.contains("\"name\":\"gauge.specq.len\""));
        assert!(s.contains("\"name\":\"morph.to_translator\""));
        assert!(s.contains("\"args\":{\"name\":\"metrics\"}"));
        // A disabled series adds nothing.
        let bare = chrome_trace_json_with_metrics(&Tracer::disabled(), Some(&Metrics::disabled()));
        assert_eq!(bare, chrome_trace_json(&Tracer::disabled()));
    }

    #[test]
    fn two_clock_merge_adds_host_process() {
        use vta_sim::{PhaseTotal, ProfEvent, ProfileReport, ThreadProfile};
        let profile = ProfileReport {
            wall_nanos: 5_000_000,
            threads: vec![ThreadProfile {
                name: "host.worker0".to_string(),
                phases: vec![PhaseTotal {
                    phase: "host.translate",
                    nanos: 1_500,
                    count: 1,
                }],
                events: vec![ProfEvent {
                    phase: "host.translate",
                    start_nanos: 2_500,
                    dur_nanos: 1_500,
                }],
                dropped: 0,
            }],
        };
        let s = chrome_trace_json_two_clock(&Tracer::disabled(), None, Some(&profile));
        crate::json_lint::check(&s).expect("valid JSON");
        assert!(s.contains("host wall clock"), "{s}");
        assert!(s.contains("simulated fabric"), "{s}");
        assert!(s.contains("\"name\":\"host.worker0\""), "{s}");
        // 2500ns start, 1500ns duration → 2.500µs / 1.500µs.
        assert!(s.contains("\"ts\":2.500,\"dur\":1.500"), "{s}");
        // Host tracks live in their own process (pid 2).
        assert!(s.contains("\"pid\":2,\"tid\":1"), "{s}");
        // An empty profile changes nothing.
        let bare = chrome_trace_json_two_clock(&Tracer::disabled(), None, None);
        assert_eq!(bare, chrome_trace_json(&Tracer::disabled()));
        let empty =
            chrome_trace_json_two_clock(&Tracer::disabled(), None, Some(&ProfileReport::default()));
        assert_eq!(empty, bare);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn report_mentions_busy_tracks_and_links() {
        let r = utilization_report(&sample_tracer(), 100);
        assert!(r.contains("tile(0,0) exec"));
        assert!(r.contains("5.00%"), "5 busy cycles of 100: {r}");
        assert!(r.contains("top links"));
        assert!(r.contains("specq.depth"));
        assert!(r.contains("p50 3"));
    }
}
