//! Regenerates the paper's figures/tables from the simulated system.
//!
//! ```text
//! figures [--fig 4|5|6|7|8|9|10|11|cpi|headline|all] [--scale test|small|large] [--csv]
//! figures --trace out.json [--bench vpr] [--scale test|small|large]
//! ```
//!
//! `--trace` runs one benchmark under `paper_default` with cycle-accurate
//! tracing, writes a Chrome-trace-event JSON file (open it at
//! <https://ui.perfetto.dev>), and prints a utilization report.

use vta_bench::figures as f;
use vta_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fig = "all".to_string();
    let mut scale = Scale::Small;
    let mut csv = false;
    let mut trace_out: Option<String> = None;
    let mut bench = "vpr".to_string();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                i += 1;
                fig = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--trace" => {
                i += 1;
                trace_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--bench" => {
                i += 1;
                bench = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("small") => Scale::Small,
                    Some("large") => Scale::Large,
                    _ => usage(),
                };
            }
            "--csv" => csv = true,
            _ => {
                usage();
            }
        }
        i += 1;
    }

    if let Some(path) = trace_out {
        run_trace(&bench, scale, &path);
        return;
    }

    let print = |t: &vta_bench::Table| {
        if csv {
            println!("{}", t.to_csv());
        } else {
            println!("{}", t.render());
        }
    };

    match fig.as_str() {
        "4" => print(&f::fig4(scale)),
        "5" | "6" | "7" => {
            let ms = f::fig5_measurements(scale);
            match fig.as_str() {
                "5" => print(&f::fig5(&ms)),
                "6" => print(&f::fig6(&ms)),
                _ => print(&f::fig7(&ms)),
            }
        }
        "8" => print(&f::fig8(scale)),
        "9" | "10" => {
            let ms = f::fig9_measurements(scale);
            if fig == "9" {
                print(&f::fig9(&ms));
            } else {
                print(&f::fig10(&ms));
            }
        }
        "11" => println!("{}", f::fig11()),
        "cpi" => println!("{}", f::cpi_analysis()),
        "headline" => print(&f::headline(scale)),
        "all" => {
            print(&f::headline(scale));
            print(&f::fig4(scale));
            let ms = f::fig5_measurements(scale);
            print(&f::fig5(&ms));
            print(&f::fig6(&ms));
            print(&f::fig7(&ms));
            print(&f::fig8(scale));
            let ms = f::fig9_measurements(scale);
            print(&f::fig9(&ms));
            print(&f::fig10(&ms));
            println!("{}", f::fig11());
            println!("{}", f::cpi_analysis());
        }
        _ => usage(),
    }
}

fn run_trace(bench: &str, scale: Scale, path: &str) {
    use vta_bench::trace::{chrome_trace_json, trace_benchmark, utilization_report};
    use vta_dbt::VirtualArchConfig;

    let (report, tracer) =
        trace_benchmark(bench, scale, VirtualArchConfig::paper_default(), 1 << 18);
    let json = chrome_trace_json(&tracer);
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!(
        "{bench}: {} cycles, {} trace events ({} dropped) -> {path}",
        report.cycles,
        tracer.len(),
        tracer.dropped()
    );
    println!("open the file at https://ui.perfetto.dev\n");
    print!("{}", utilization_report(&tracer, report.cycles));
}

fn usage() -> ! {
    eprintln!(
        "usage: figures [--fig 4|5|6|7|8|9|10|11|cpi|headline|all] \
         [--scale test|small|large] [--csv]\n       \
         figures --trace out.json [--bench vpr] [--scale test|small|large]"
    );
    std::process::exit(2);
}
