//! Differential fuzzing driver for the x86 front end.
//!
//! Streams deterministic cases from `vta_ir::fuzz::gen` through the
//! three-way oracle (reference interpreter vs translated path at both
//! optimization levels). Any divergence is minimized on the spot and
//! printed in the corpus file format, ready to commit under
//! `crates/ir/tests/corpus/`; the process then exits nonzero.
//!
//! ```text
//! cargo run --release -p vta-bench --bin fuzz                    # 10k cases, seed 0x5EED
//! cargo run --release -p vta-bench --bin fuzz -- --cases 100000
//! cargo run --release -p vta-bench --bin fuzz -- --seed 7
//! cargo run --release -p vta-bench --bin fuzz -- --corpus crates/ir/tests/corpus
//! cargo run --release -p vta-bench --bin fuzz -- --verbose       # per-case verdicts
//! ```
//!
//! Everything is deterministic and offline: the same `--seed` produces
//! the same case stream and the same verdicts on every host, which is
//! what lets CI run a fixed-seed smoke sweep as a hard gate.

use vta_ir::fuzz::{corpus, gen::CaseStream, minimize, run_case, Verdict};

fn parse_flag(name: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == name {
            return args.next();
        }
    }
    None
}

fn main() {
    let cases: u64 = parse_flag("--cases")
        .map(|v| v.parse().expect("--cases takes a number"))
        .unwrap_or(10_000);
    let seed: u64 = parse_flag("--seed")
        .map(|v| {
            let v = v.trim_start_matches("0x");
            u64::from_str_radix(v, 16)
                .or_else(|_| v.parse())
                .expect("--seed takes a number")
        })
        .unwrap_or(0x5EED);
    let verbose = std::env::args().any(|a| a == "--verbose");

    // Corpus replay mode: every committed reproducer must pass.
    if let Some(dir) = parse_flag("--corpus") {
        let loaded = corpus::load_dir(std::path::Path::new(&dir)).unwrap_or_else(|e| {
            eprintln!("fuzz: {e}");
            std::process::exit(2);
        });
        let mut failed = 0usize;
        for (path, case) in &loaded {
            match run_case(case) {
                Verdict::Pass => {
                    if verbose {
                        println!("PASS  {path}");
                    }
                }
                Verdict::Skip(reason) => {
                    // Committed cases must be comparable; a skip means
                    // the corpus entry no longer tests anything.
                    println!("SKIP  {path} ({reason}) — corpus entries must not skip");
                    failed += 1;
                }
                Verdict::Diverge(d) => {
                    println!("FAIL  {path}: {:?} at {:?}: {}", d.channel, d.opt, d.detail);
                    failed += 1;
                }
            }
        }
        println!("corpus: {} replayed, {failed} failed", loaded.len());
        std::process::exit(i32::from(failed > 0));
    }

    let mut passes = 0u64;
    let mut skips = 0u64;
    for (i, case) in CaseStream::new(seed).take(cases as usize).enumerate() {
        match run_case(&case) {
            Verdict::Pass => passes += 1,
            Verdict::Skip(reason) => {
                skips += 1;
                if verbose {
                    println!("skip  {} ({reason})", case.name);
                }
            }
            Verdict::Diverge(d) => {
                println!("DIVERGENCE in case {} (#{i}):", case.name);
                println!("  channel {:?} at {:?}: {}", d.channel, d.opt, d.detail);
                println!("minimizing…");
                let min = minimize::minimize(&case);
                match run_case(&min) {
                    Verdict::Diverge(md) => {
                        println!(
                            "  minimized to {} bytes ({:?} at {:?}: {})",
                            min.code.len(),
                            md.channel,
                            md.opt,
                            md.detail
                        );
                    }
                    _ => println!("  (minimizer lost the divergence; showing original)"),
                }
                println!("--- corpus file (commit under crates/ir/tests/corpus/) ---");
                print!("{}", corpus::format(&min));
                println!("-----------------------------------------------------------");
                std::process::exit(1);
            }
        }
        if verbose && (i + 1) % 1000 == 0 {
            println!("… {} cases ({passes} pass, {skips} skip)", i + 1);
        }
    }
    println!(
        "fuzz: {cases} cases at seed {seed:#x}: {passes} passed, {skips} skipped, 0 divergences"
    );
}
