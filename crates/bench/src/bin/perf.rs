//! Measures host simulator throughput on the Figure 5 sweep at
//! `Scale::Test` and maintains the `BENCH_dispatch.json` and
//! `BENCH_parallel.json` trajectory artifacts.
//!
//! ```text
//! cargo run --release -p vta-bench --bin perf                  # print only
//! cargo run --release -p vta-bench --bin perf -- --threads 4   # parallel sweep
//! cargo run --release -p vta-bench --bin perf -- --write       # refresh dispatch JSON
//! cargo run --release -p vta-bench --bin perf -- --scaling     # refresh parallel JSON
//! cargo run --release -p vta-bench --bin perf -- --check       # verify determinism
//! cargo run --release -p vta-bench --bin perf -- --metrics     # windowed time series
//! cargo run --release -p vta-bench --bin perf -- --superblock  # refresh superblock A/B JSON
//! cargo run --release -p vta-bench --bin perf -- --fabric-scaling  # 2 fabric workers beat 1?
//! cargo run --release -p vta-bench --bin perf -- --profile     # host wall-time breakdown
//! ```
//!
//! `--profile [--bench B] [--scale test|small|large] [--threads N]
//! [--fabric-workers M] [--manager-shards S]` runs one benchmark
//! (default: crafty at `Scale::Large`) with the host wall-clock span
//! profiler AND the cycle tracer enabled, prints the per-thread
//! top-phases table plus the manager-duty breakdown (deterministic
//! `manager.*` cycle counters) and the per-shard manager attribution,
//! and writes `BENCH_profile.json` and a merged two-clock
//! Perfetto timeline `profile_B_trace.json` (simulated-cycle tracks as
//! process 1, host wall tracks as process 2). Combined forms:
//! `--profile --check` reruns the determinism check with profiling
//! enabled inside every fingerprinted system — its stdout must be
//! byte-identical to a plain `--check` (ci.sh diffs it); `--profile
//! --overhead` measures the profiler's own cost on the fingerprint
//! benchmarks and fails if the median run is >5% slower than with
//! profiling off.
//!
//! `--superblock` runs the region-formation A/B matrix (gzip/mcf/crafty/
//! interp × both opt levels × off/static/recorded superblock modes),
//! asserts guest-instruction retirement reconciles across the modes,
//! re-derives the paper-default fingerprints at 1/4/nproc host threads
//! to attest thread-count invariance, and writes
//! `BENCH_superblock.json`. `--superblock --check` runs only the cell
//! matrix and the retirement reconciliation — no fingerprints, no
//! `Scale::Large` highlights, nothing written — as a fast CI gate.
//!
//! `--metrics [--bench B] [--interval N] [--threads N]` runs one
//! benchmark at `Scale::Test` with the windowed metrics layer on and
//! writes the series as `metrics_B.csv` / `metrics_B.json` plus a
//! Chrome-trace file `metrics_B_trace.json` whose counter tracks open
//! directly in Perfetto; the phase report and (when `--threads > 1`)
//! the host worker-pool counters go to stdout. `--metrics --check`
//! instead re-derives the committed `BENCH_metrics_vpr.csv` golden
//! (vpr, serial, fixed interval) and diffs byte-for-byte — regenerate
//! with `--metrics --bless` when a simulated-behavior change is
//! intentional.
//!
//! `--threads N` sets both the sweep's host-thread fan-out and the
//! in-`System` worker-pool width used for the fingerprint runs, so a
//! `--check` at `--threads 4` genuinely exercises the parallel
//! translation path end to end. `--fabric-workers N` likewise sets the
//! epoch-parallel fabric partition count inside each fingerprinted
//! `System` (the `VTA_FABRIC_WORKERS` env var reaches every other mode,
//! including the metrics golden and the superblock matrix).
//! `--manager-shards S` (or `VTA_MANAGER_SHARDS`) sets the manager
//! service-shard count: per-partition duty attribution over one shared
//! service ring, so simulated behavior is bit-identical at every count
//! and only the per-shard report changes.
//!
//! With `--check`, the fingerprints are recomputed and compared against
//! the checked-in `BENCH_dispatch.json`, and `BENCH_parallel.json` is
//! validated for internal consistency — nothing is rewritten, and any
//! drift exits nonzero. Crucially the `--check` stdout is identical for
//! every `--threads`, `--fabric-workers`, and `--manager-shards` value,
//! so CI can diff the output across all three axes to enforce the
//! determinism invariant.
//!
//! With `--scaling`, the fig5 sweep runs at 1/2/4/8 threads (verifying
//! fingerprints at each width), the `Scale::Large` highlight pair runs
//! at 1/2/nproc fabric workers (verifying fingerprints at each count),
//! and the measured trajectories are written to `BENCH_parallel.json`.
//!
//! `--fabric-scaling` is the core-count-gated CI gate: on a multi-core
//! host the `Scale::Large` highlight pair at 2 fabric workers must beat
//! 1 on wall clock; on a single-core host the stage reports itself
//! skipped (epoch-parallelism cannot beat serial without physical
//! cores) and exits 0.

use vta_bench::metrics::{metrics_benchmark, phase_summary, series_csv, series_json};
use vta_bench::perf::{
    cycle_fingerprint, cycle_fingerprint_profiled, cycle_fingerprint_with_pool,
    fabric_highlight_wall, host_pools_summary, parse_fingerprints, render_json,
    render_parallel_json, render_superblock_json, run_fig5_probe, superblock_cells,
    superblock_highlights, superblock_reconciles, validate_parallel, FabricPoint, Fingerprint,
    ParallelPoint, SweepPerf,
};
use vta_bench::profile::{
    manager_report, profile_benchmark, profile_overhead, render_profile_json, shard_report,
    top_phases_report,
};
use vta_bench::trace::{chrome_trace_json_two_clock, chrome_trace_json_with_metrics};
use vta_dbt::VirtualArchConfig;
use vta_sim::{MetricsConfig, Tracer};
use vta_workloads::Scale;

/// The Figure 5 `Scale::Test` sweep measured on the pre-optimization
/// tree (string-keyed stats, HashMap block dispatch, no D$ fast path).
/// Frozen here so the speedup denominator survives the tree it measured;
/// best-of-three on the PR-1 development host, so the claimed speedup is
/// conservative.
fn pre_opt_baseline() -> SweepPerf {
    SweepPerf {
        label: "before: string-keyed stats + HashMap dispatch".to_string(),
        wall_seconds: 1.897,
        cpu_seconds: 1.562,
        guest_insns: 2_553_792,
        sim_cycles: 321_345_742,
    }
}

/// Value of a `--flag N` argument, if present.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn threads_arg() -> usize {
    arg_value("--threads")
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

fn fabric_workers_arg() -> usize {
    arg_value("--fabric-workers")
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// `--manager-shards N`, falling back to `VTA_MANAGER_SHARDS` (the env
/// route reaches modes without explicit plumbing), else 1.
fn manager_shards_arg() -> usize {
    arg_value("--manager-shards")
        .and_then(|v| v.parse::<usize>().ok())
        .or_else(|| {
            std::env::var("VTA_MANAGER_SHARDS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        })
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Recomputes the fingerprints (with `threads` host threads,
/// `fabric_workers` fabric partitions, and `manager_shards` manager
/// service shards inside each fingerprinted `System`) and diffs them
/// against the checked-in JSON; also validates `BENCH_parallel.json`.
/// Returns the process exit code.
///
/// Everything printed to stdout here is independent of `threads`,
/// `fabric_workers`, `manager_shards`, AND `profiled`: ci.sh diffs
/// this output across the whole matrix and across profiling on/off.
fn check(threads: usize, fabric_workers: usize, manager_shards: usize, profiled: bool) -> i32 {
    let json = match std::fs::read_to_string("BENCH_dispatch.json") {
        Ok(j) => j,
        Err(e) => {
            eprintln!("--check: cannot read BENCH_dispatch.json: {e}");
            return 2;
        }
    };
    let expected = match parse_fingerprints(&json) {
        Ok(fp) => fp,
        Err(e) => {
            eprintln!("--check: cannot parse BENCH_dispatch.json: {e}");
            return 2;
        }
    };
    let actual = if profiled {
        cycle_fingerprint_profiled(threads, fabric_workers, manager_shards)
    } else {
        cycle_fingerprint(threads, fabric_workers, manager_shards)
    };
    let mut bad = false;
    for fp in &actual {
        match expected.iter().find(|(n, _)| n == fp.name) {
            Some((_, want)) if *want == fp.cycles => {
                println!("--check: {}: {} ok", fp.name, fp.cycles);
            }
            Some((_, want)) => {
                eprintln!(
                    "--check: {}: cycles drifted: expected {want}, got {}",
                    fp.name, fp.cycles
                );
                bad = true;
            }
            None => {
                eprintln!("--check: {}: missing from BENCH_dispatch.json", fp.name);
                bad = true;
            }
        }
        // Not compared against the dispatch file (older files predate
        // it); printed so ci.sh can diff the FULL stats state across
        // thread counts, not just total cycles.
        println!("--check: {}: stats_fp {:016x}", fp.name, fp.stats_fp);
    }
    match std::fs::read_to_string("BENCH_parallel.json") {
        Ok(pjson) => match validate_parallel(&pjson) {
            Ok(()) => println!("--check: BENCH_parallel.json ok"),
            Err(e) => {
                eprintln!("--check: BENCH_parallel.json invalid: {e}");
                bad = true;
            }
        },
        Err(e) => {
            eprintln!("--check: cannot read BENCH_parallel.json: {e}");
            bad = true;
        }
    }
    if bad {
        eprintln!(
            "--check: simulated behavior or artifacts drifted; if intentional, refresh \
             with `perf -- --write` / `perf -- --scaling` and explain the change"
        );
        1
    } else {
        0
    }
}

/// Runs the fig5 sweep at 1/2/4/8 threads and the `Scale::Large`
/// highlight pair at 1/2/nproc fabric workers, verifying the
/// fingerprints are identical at every point on both axes, and writes
/// `BENCH_parallel.json`.
fn scaling() -> i32 {
    let mut points: Vec<ParallelPoint> = Vec::new();
    let mut base_fp: Option<Vec<Fingerprint>> = None;
    let mut base_wall = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let (perf, _) = run_fig5_probe(&format!("{threads} threads"), threads);
        let fp = cycle_fingerprint(threads, 1, 1);
        match &base_fp {
            None => base_fp = Some(fp),
            Some(base) => {
                if *base != fp {
                    eprintln!("--scaling: fingerprints diverged at {threads} threads");
                    return 1;
                }
            }
        }
        if threads == 1 {
            base_wall = perf.wall_seconds;
        }
        let speedup = base_wall / perf.wall_seconds.max(1e-9);
        println!(
            "--scaling: {threads} threads: wall {:.3}s, cpu {:.3}s, speedup {:.2}x",
            perf.wall_seconds, perf.cpu_seconds, speedup
        );
        points.push(ParallelPoint {
            threads,
            wall_seconds: perf.wall_seconds,
            cpu_seconds: perf.cpu_seconds,
            speedup_wall: speedup,
        });
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut fabric_widths = vec![1usize, 2, cores];
    fabric_widths.sort_unstable();
    fabric_widths.dedup();
    let mut fabric_points: Vec<FabricPoint> = Vec::new();
    let mut fabric_base = 0.0f64;
    for &workers in &fabric_widths {
        let fp = cycle_fingerprint(1, workers, 1);
        if *base_fp.as_ref().expect("thread sweep ran first") != fp {
            eprintln!("--scaling: fingerprints diverged at {workers} fabric workers");
            return 1;
        }
        let wall = fabric_highlight_wall(workers);
        if workers == 1 {
            fabric_base = wall;
        }
        let speedup = fabric_base / wall.max(1e-9);
        println!(
            "--scaling: {workers} fabric workers: large highlights wall {wall:.3}s, \
             speedup {speedup:.2}x"
        );
        fabric_points.push(FabricPoint {
            workers,
            wall_seconds: wall,
            speedup_wall: speedup,
        });
    }
    let host = format!("{cores}-core host (speedup bounded by physical cores)");
    let json = render_parallel_json(&host, &points, &fabric_points, true);
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
    0
}

/// `--fabric-scaling`: the core-count-gated wall-clock gate. On a
/// multi-core host, 2 fabric workers must beat 1 on the `Scale::Large`
/// highlight pair; on a single-core host the gate cannot be meaningful
/// (the epoch workers would time-slice one core), so it reports itself
/// skipped and passes. Returns the process exit code.
fn fabric_scaling() -> i32 {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 2 {
        println!(
            "--fabric-scaling: skipped: single-core host (epoch-parallel workers would \
             time-slice one core; no wall-clock win is possible)"
        );
        return 0;
    }
    let wall1 = fabric_highlight_wall(1);
    let wall2 = fabric_highlight_wall(2);
    println!(
        "--fabric-scaling: large highlights wall {wall1:.3}s @ 1 fabric worker, \
         {wall2:.3}s @ 2 ({:.2}x)",
        wall1 / wall2.max(1e-9)
    );
    if wall2 < wall1 {
        println!("--fabric-scaling: PASS: 2 fabric workers beat 1 on a {cores}-core host");
        0
    } else {
        eprintln!(
            "--fabric-scaling: FAIL: 2 fabric workers ({wall2:.3}s) did not beat 1 \
             ({wall1:.3}s) on a {cores}-core host"
        );
        1
    }
}

/// `--superblock` mode: attest fingerprint thread-count invariance,
/// run the region-formation A/B matrix, assert retirement reconciles
/// across modes, and write `BENCH_superblock.json`. With `check_only`
/// the matrix + reconciliation run alone (fast CI gate, no write).
/// Returns the process exit code.
fn superblock_mode(check_only: bool) -> i32 {
    if !check_only {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut widths = vec![1usize, 4, cores];
        widths.dedup();
        let base = cycle_fingerprint(1, 1, 1);
        for &w in &widths[1..] {
            let fp = cycle_fingerprint(w, 1, 1);
            if fp != base {
                eprintln!("--superblock: fingerprints diverged at {w} host threads");
                return 1;
            }
        }
        println!(
            "--superblock: fingerprints identical at {:?} host threads",
            widths
        );
        if cycle_fingerprint(1, 2, 1) != base {
            eprintln!("--superblock: fingerprints diverged at 2 fabric workers");
            return 1;
        }
        println!("--superblock: fingerprints identical at [1, 2] fabric workers");
        if cycle_fingerprint(1, 1, 2) != base {
            eprintln!("--superblock: fingerprints diverged at 2 manager shards");
            return 1;
        }
        println!("--superblock: fingerprints identical at [1, 2] manager shards");
    }
    let cells = superblock_cells();
    for c in &cells {
        println!(
            "--superblock: {:>7} opt={:<4} mode={:<8} cycles {:>12} block-exits/kinsn {:>8.3} \
             inline_hit {:>8} recorded {:>4} wall {:.3}s",
            c.bench,
            c.opt,
            c.mode,
            c.cycles,
            c.block_exits_per_kinsn(),
            c.inline_hit,
            c.sb_recorded,
            c.wall_seconds
        );
    }
    if let Err(e) = superblock_reconciles(&cells) {
        eprintln!("--superblock: guest retirement does not reconcile: {e}");
        return 1;
    }
    println!("--superblock: guest_insns identical across off/static/recorded per bench x opt");
    if check_only {
        return 0;
    }
    let highlights = superblock_highlights();
    for h in &highlights {
        println!(
            "--superblock: large {:>7} cycles {:>12} / {:>12} / {:>12} block-exits/kinsn \
             {:>8.3} / {:>8.3} / {:>8.3} wall {:.3}s / {:.3}s / {:.3}s (off/static/recorded)",
            h.bench,
            h.cycles_off,
            h.cycles_static,
            h.cycles_on,
            h.block_exits_off,
            h.block_exits_static,
            h.block_exits_on,
            h.wall_off,
            h.wall_static,
            h.wall_on
        );
    }
    let json = render_superblock_json(&cells, &highlights, true);
    std::fs::write("BENCH_superblock.json", &json).expect("write BENCH_superblock.json");
    println!("wrote BENCH_superblock.json");
    0
}

/// `--profile` mode: run one benchmark with the host wall profiler and
/// the cycle tracer both on, print the two breakdowns (host wall
/// phases per thread; manager duties in simulated cycles), and write
/// the trajectory JSON plus the merged two-clock Perfetto timeline.
/// Returns the process exit code.
fn profile_mode(threads: usize, fabric_workers: usize, manager_shards: usize) -> i32 {
    let bench = arg_value("--bench").unwrap_or_else(|| "crafty".to_string());
    let scale = match arg_value("--scale").as_deref() {
        None | Some("large") => Scale::Large,
        Some("small") => Scale::Small,
        Some("test") => Scale::Test,
        Some(other) => {
            eprintln!("--profile: unknown --scale {other} (want test|small|large)");
            return 2;
        }
    };
    let run = profile_benchmark(
        &bench,
        scale,
        threads,
        fabric_workers,
        manager_shards,
        1 << 16,
    );
    println!(
        "--profile: {} @ Scale::{:?}, {} host thread{}, {} fabric worker{}, {} manager \
         shard{}: {} cycles, {} guest insns, wall {:.3}s",
        run.bench,
        scale,
        threads,
        if threads == 1 { "" } else { "s" },
        fabric_workers,
        if fabric_workers == 1 { "" } else { "s" },
        run.manager_shards,
        if run.manager_shards == 1 { "" } else { "s" },
        run.cycles,
        run.guest_insns,
        run.wall_seconds
    );
    print!("{}", top_phases_report(&run.profile));
    print!("{}", manager_report(&run.manager));
    print!("{}", shard_report(&run.shards, run.cycles));
    let trace_path = format!("profile_{bench}_trace.json");
    for (path, content) in [
        ("BENCH_profile.json".to_string(), render_profile_json(&run)),
        (
            trace_path,
            chrome_trace_json_two_clock(&run.tracer, None, Some(&run.profile)),
        ),
    ] {
        std::fs::write(&path, content).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
    0
}

/// `--profile --overhead`: the profiler must be close to free. Runs
/// the fingerprint benchmarks with profiling off and on (interleaved,
/// min-of-N to shed scheduler noise) and fails if enabling it costs
/// more than 5% wall.
fn overhead_mode() -> i32 {
    let (off, on) = profile_overhead(9);
    let ratio = on / off.max(1e-9);
    println!(
        "--profile --overhead: fingerprint benches min wall {off:.3}s off, {on:.3}s on \
         ({ratio:.3}x)"
    );
    if ratio > 1.05 {
        eprintln!(
            "--profile --overhead: FAIL: profiling costs {:.1}% (> 5% budget)",
            (ratio - 1.0) * 100.0
        );
        1
    } else {
        println!("--profile --overhead: ok (within the 5% budget)");
        0
    }
}

/// The committed metrics golden: benchmark, interval, and file name.
/// Serial on purpose — host-pool gauges are only registered when a
/// worker pool spawns, so the serial column set is host-independent.
const METRICS_GOLDEN: (&str, u64, &str) = ("vpr", 50_000, "BENCH_metrics_vpr.csv");

/// `--metrics` mode: run one benchmark with windowed sampling on and
/// export/inspect the series. Returns the process exit code.
fn metrics_mode(threads: usize) -> i32 {
    let check = std::env::args().any(|a| a == "--check");
    let bless = std::env::args().any(|a| a == "--bless");
    if check || bless {
        return metrics_check(bless);
    }
    let bench = arg_value("--bench").unwrap_or_else(|| "vpr".to_string());
    let interval = arg_value("--interval")
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(MetricsConfig::default().interval);
    let mcfg = MetricsConfig {
        interval,
        ..MetricsConfig::default()
    };
    let (report, m, host) = metrics_benchmark(
        &bench,
        Scale::Test,
        VirtualArchConfig::paper_default(),
        mcfg,
        threads,
    );
    if !m.is_enabled() {
        eprintln!("--metrics: built without the `metrics` feature; nothing recorded");
        return 2;
    }
    if let Err(e) = m.reconcile_stats(&report.stats) {
        eprintln!("--metrics: series does not reconcile with Stats: {e}");
        return 1;
    }
    println!(
        "--metrics: {bench} @ Scale::Test, interval {interval}: {} windows reconcile with \
         end-of-run stats exactly",
        m.len()
    );
    print!("{}", phase_summary(&m, &report, host.as_ref()));
    for (path, content) in [
        (format!("metrics_{bench}.csv"), series_csv(&m)),
        (format!("metrics_{bench}.json"), series_json(&m)),
        (
            format!("metrics_{bench}_trace.json"),
            chrome_trace_json_with_metrics(&Tracer::disabled(), Some(&m)),
        ),
    ] {
        std::fs::write(&path, content).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path}");
    }
    0
}

/// `--metrics --check` / `--bless`: re-derive the golden series CSV
/// (always serial at the fixed interval) and diff or rewrite it.
fn metrics_check(bless: bool) -> i32 {
    let (bench, interval, path) = METRICS_GOLDEN;
    let (report, m, _) = metrics_benchmark(
        bench,
        Scale::Test,
        VirtualArchConfig::paper_default(),
        MetricsConfig {
            interval,
            ..MetricsConfig::default()
        },
        1,
    );
    if !m.is_enabled() {
        println!("--metrics --check: `metrics` feature off; golden not applicable, skipping");
        return 0;
    }
    if let Err(e) = m.reconcile_stats(&report.stats) {
        eprintln!("--metrics --check: series does not reconcile with Stats: {e}");
        return 1;
    }
    let csv = series_csv(&m);
    if bless {
        std::fs::write(path, &csv).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("wrote {path} ({} windows)", m.len());
        return 0;
    }
    let golden = match std::fs::read_to_string(path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("--metrics --check: cannot read {path}: {e}");
            return 2;
        }
    };
    if golden == csv {
        println!(
            "--metrics --check: {bench} series matches {path} ({} windows)",
            m.len()
        );
        return 0;
    }
    let mismatch = golden
        .lines()
        .zip(csv.lines())
        .position(|(a, b)| a != b)
        .map_or_else(
            || {
                format!(
                    "line counts differ ({} vs {})",
                    golden.lines().count(),
                    csv.lines().count()
                )
            },
            |i| format!("first difference at line {}", i + 1),
        );
    eprintln!(
        "--metrics --check: {bench} series drifted from {path}: {mismatch}; if the simulated \
         behavior change is intentional, refresh with `perf -- --metrics --bless`"
    );
    1
}

fn main() {
    let threads = threads_arg();
    let fabric_workers = fabric_workers_arg();
    let manager_shards = manager_shards_arg();
    if std::env::args().any(|a| a == "--metrics") {
        std::process::exit(metrics_mode(threads));
    }
    if std::env::args().any(|a| a == "--superblock") {
        let check_only = std::env::args().any(|a| a == "--check");
        std::process::exit(superblock_mode(check_only));
    }
    if std::env::args().any(|a| a == "--fabric-scaling") {
        std::process::exit(fabric_scaling());
    }
    let profiled = std::env::args().any(|a| a == "--profile");
    if profiled && std::env::args().any(|a| a == "--overhead") {
        std::process::exit(overhead_mode());
    }
    if std::env::args().any(|a| a == "--check") {
        std::process::exit(check(threads, fabric_workers, manager_shards, profiled));
    }
    if profiled {
        std::process::exit(profile_mode(threads, fabric_workers, manager_shards));
    }
    if std::env::args().any(|a| a == "--scaling") {
        std::process::exit(scaling());
    }
    let write = std::env::args().any(|a| a == "--write");
    let (after, _) = run_fig5_probe(
        "after: interned stats + arena dispatch + D$ fast path + shared translations",
        threads,
    );
    println!(
        "fig5 sweep @ Scale::Test ({} host thread{}): wall {:.3}s, serial {:.3}s, {:.1}M guest insns/s, {:.1}M sim cycles/s",
        threads,
        if threads == 1 { "" } else { "s" },
        after.wall_seconds,
        after.cpu_seconds,
        after.guest_insns_per_sec() / 1e6,
        after.sim_cycles_per_sec() / 1e6
    );
    let (fp, pool, fabric) = cycle_fingerprint_with_pool(threads, fabric_workers, manager_shards);
    for f in &fp {
        println!("paper_default cycles {}: {}", f.name, f.cycles);
        println!("paper_default stats_fp {}: {:016x}", f.name, f.stats_fp);
    }
    // Host-side pool counters (threads / fabric workers > 1 only) as
    // one unified section. Informational: they depend on host
    // scheduling, so they are never part of --check.
    print!(
        "{}",
        host_pools_summary(threads, fabric_workers, pool.as_ref(), fabric.as_ref())
    );
    if write {
        let json = render_json(&pre_opt_baseline(), &after, &fp);
        std::fs::write("BENCH_dispatch.json", &json).expect("write BENCH_dispatch.json");
        println!("wrote BENCH_dispatch.json");
    }
}
