//! Measures host simulator throughput on the Figure 5 sweep at
//! `Scale::Test` and maintains the `BENCH_dispatch.json` trajectory
//! artifact.
//!
//! ```text
//! cargo run --release -p vta-bench --bin perf             # print only
//! cargo run --release -p vta-bench --bin perf -- --write  # refresh JSON
//! cargo run --release -p vta-bench --bin perf -- --check  # verify cycles
//! ```
//!
//! With `--write`, the "before" section is the frozen pre-optimization
//! baseline measured on the tree this PR started from (dependency fixes
//! only, no hot-path work); the "after" section is the current tree.
//!
//! With `--check`, only the cycle fingerprints are recomputed and
//! compared against the checked-in `BENCH_dispatch.json` — nothing is
//! rewritten, and any drift exits nonzero. CI runs this so simulated
//! behavior cannot change silently.

use vta_bench::perf::{
    cycle_fingerprint, parse_fingerprints, render_json, run_fig5_probe, SweepPerf,
};

/// The Figure 5 `Scale::Test` sweep measured on the pre-optimization
/// tree (string-keyed stats, HashMap block dispatch, no D$ fast path).
/// Frozen here so the speedup denominator survives the tree it measured;
/// best-of-three on the PR-1 development host, so the claimed speedup is
/// conservative.
fn pre_opt_baseline() -> SweepPerf {
    SweepPerf {
        label: "before: string-keyed stats + HashMap dispatch".to_string(),
        wall_seconds: 1.897,
        cpu_seconds: 1.562,
        guest_insns: 2_553_792,
        sim_cycles: 321_345_742,
    }
}

/// Recomputes the fingerprints and diffs them against the checked-in
/// JSON. Returns the process exit code.
fn check() -> i32 {
    let json = match std::fs::read_to_string("BENCH_dispatch.json") {
        Ok(j) => j,
        Err(e) => {
            eprintln!("--check: cannot read BENCH_dispatch.json: {e}");
            return 2;
        }
    };
    let expected = match parse_fingerprints(&json) {
        Ok(fp) => fp,
        Err(e) => {
            eprintln!("--check: cannot parse BENCH_dispatch.json: {e}");
            return 2;
        }
    };
    let actual = cycle_fingerprint();
    let mut bad = false;
    for (name, cycles) in &actual {
        match expected.iter().find(|(n, _)| n == name) {
            Some((_, want)) if want == cycles => {
                println!("--check: {name}: {cycles} ok");
            }
            Some((_, want)) => {
                eprintln!("--check: {name}: cycles drifted: expected {want}, got {cycles}");
                bad = true;
            }
            None => {
                eprintln!("--check: {name}: missing from BENCH_dispatch.json");
                bad = true;
            }
        }
    }
    if bad {
        eprintln!(
            "--check: simulated cycle counts changed; if intentional, refresh with \
             `perf -- --write` and explain the behavior change"
        );
        1
    } else {
        0
    }
}

fn main() {
    if std::env::args().any(|a| a == "--check") {
        std::process::exit(check());
    }
    let write = std::env::args().any(|a| a == "--write");
    let (after, _) = run_fig5_probe(
        "after: interned stats + arena dispatch + D$ fast path + shared translations",
    );
    println!(
        "fig5 sweep @ Scale::Test: wall {:.3}s, serial {:.3}s, {:.1}M guest insns/s, {:.1}M sim cycles/s",
        after.wall_seconds,
        after.cpu_seconds,
        after.guest_insns_per_sec() / 1e6,
        after.sim_cycles_per_sec() / 1e6
    );
    let fp = cycle_fingerprint();
    for (name, cycles) in &fp {
        println!("paper_default cycles {name}: {cycles}");
    }
    if write {
        let json = render_json(&pre_opt_baseline(), &after, &fp);
        std::fs::write("BENCH_dispatch.json", &json).expect("write BENCH_dispatch.json");
        println!("wrote BENCH_dispatch.json");
    }
}
