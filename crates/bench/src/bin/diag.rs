//! Per-benchmark diagnostic table: cycle composition of a default-config
//! run next to the Pentium III baseline. The calibration tool behind
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p vta-bench --bin diag
//! ```

use vta_dbt::{System, VirtualArchConfig};
use vta_pentium::PentiumModel;
use vta_workloads::{all, Scale};

fn main() {
    println!(
        "{:<12} {:>6} {:>11} {:>11} {:>7} {:>6} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "bench",
        "slow",
        "cycles",
        "piii",
        "piiiCPI",
        "emuCPI",
        "hostinsns",
        "l1c.miss",
        "l15.hit",
        "l2c.acc",
        "l2c.miss",
        "chains",
        "memdram"
    );
    for w in all(Scale::Small) {
        let mut sys = System::new(VirtualArchConfig::paper_default(), &w.image);
        let r = sys.run(2_000_000_000).expect("benchmark runs");
        let p = PentiumModel::new()
            .run(&w.image, 2_000_000_000)
            .expect("baseline runs");
        let s = &r.stats;
        println!(
            "{:<12} {:>6.1} {:>11} {:>11} {:>7.2} {:>6.2} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
            w.name,
            r.cycles as f64 / p.cycles as f64,
            r.cycles,
            p.cycles,
            p.cpi(),
            r.cycles as f64 / r.guest_insns as f64,
            s.get("host_insns"),
            s.get("l1code.miss"),
            s.get("l15.hit"),
            s.get("l2code.access"),
            s.get("l2code.miss"),
            s.get("chain.taken"),
            s.get("mem.dram"),
        );
        println!(
            "    piii: insns={} mem={} l1miss={} l2miss={} mispredicts={}",
            p.insns, p.mem_accesses, p.l1_misses, p.l2_misses, p.mispredicts
        );
    }
}
