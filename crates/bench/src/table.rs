//! Result tables: one row per benchmark, one column per configuration.

use std::collections::BTreeMap;

use crate::Measurement;

/// How cell values should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Fixed-point with one decimal (slowdowns).
    Fixed1,
    /// Scientific notation (the log-scale rate figures).
    Scientific,
    /// Signed percentage (Figure 10).
    Percent,
}

/// A rendered experiment result.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure/table title.
    pub title: String,
    /// What the cells mean (y-axis label).
    pub metric: String,
    /// Column labels (configurations).
    pub columns: Vec<String>,
    /// Row label → cells (one per column).
    pub rows: Vec<(String, Vec<f64>)>,
    /// Cell formatting.
    pub format: Format,
}

impl Table {
    /// Assembles a table from measurements using `metric` per cell.
    pub fn from_measurements(
        title: &str,
        metric_name: &str,
        columns: &[String],
        measurements: &[Measurement],
        format: Format,
        metric: impl Fn(&Measurement) -> f64,
    ) -> Table {
        let mut by_bench: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
        for m in measurements {
            let col = columns
                .iter()
                .position(|c| *c == m.config)
                .expect("measurement config must be a column");
            let row = by_bench
                .entry(m.bench.as_str())
                .or_insert_with(|| vec![f64::NAN; columns.len()]);
            row[col] = metric(m);
        }
        Table {
            title: title.to_string(),
            metric: metric_name.to_string(),
            columns: columns.to_vec(),
            rows: by_bench
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            format,
        }
    }

    /// Cell lookup by row/column label.
    pub fn get(&self, bench: &str, column: &str) -> Option<f64> {
        let c = self.columns.iter().position(|x| x == column)?;
        let (_, row) = self.rows.iter().find(|(b, _)| b == bench)?;
        Some(row[c])
    }

    fn fmt_cell(&self, v: f64) -> String {
        if v.is_nan() {
            return "-".to_string();
        }
        match self.format {
            Format::Fixed1 => format!("{v:.1}"),
            Format::Scientific => format!("{v:.2e}"),
            Format::Percent => format!("{v:+.1}%"),
        }
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("   ({})\n", self.metric));
        let w0 = self
            .rows
            .iter()
            .map(|(b, _)| b.len())
            .chain([9])
            .max()
            .unwrap();
        let widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(9)).collect();
        out.push_str(&format!("{:w0$}", "benchmark", w0 = w0));
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!("  {c:>w$}", w = w));
        }
        out.push('\n');
        for (bench, cells) in &self.rows {
            out.push_str(&format!("{bench:w0$}", w0 = w0));
            for (v, w) in cells.iter().zip(&widths) {
                out.push_str(&format!("  {:>w$}", self.fmt_cell(*v), w = w));
            }
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("benchmark");
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (bench, cells) in &self.rows {
            out.push_str(bench);
            for v in cells {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        Table {
            title: "t".into(),
            metric: "m".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![
                ("gzip".into(), vec![1.5, 2.25]),
                ("mcf".into(), vec![3.0, f64::NAN]),
            ],
            format: Format::Fixed1,
        }
    }

    #[test]
    fn lookup_by_labels() {
        let t = table();
        assert_eq!(t.get("gzip", "b"), Some(2.25));
        assert_eq!(t.get("nope", "b"), None);
        assert_eq!(t.get("gzip", "nope"), None);
    }

    #[test]
    fn render_contains_all_cells() {
        let t = table();
        let s = t.render();
        assert!(s.contains("1.5") && s.contains("2.2") && s.contains("3.0"));
        assert!(s.contains('-'), "NaN renders as dash");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let t = table();
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("benchmark,a,b"));
    }

    #[test]
    fn formats() {
        let mut t = table();
        t.format = Format::Scientific;
        assert!(t.render().contains("e0") || t.render().contains("e-"));
        t.format = Format::Percent;
        assert!(t.render().contains('%'));
    }
}
