//! A minimal JSON syntax checker.
//!
//! The workspace emits JSON (trace exports, `BENCH_dispatch.json`) with
//! hand-rolled writers; this validator keeps the tests honest without a
//! serde dependency. It checks syntax only — no schema, no number-range
//! pedantry beyond what the grammar requires.

/// Checks that `s` is one syntactically valid JSON value.
///
/// # Errors
///
/// Returns a byte offset and message for the first violation.
pub fn check(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while pos_digit(b, *pos) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn pos_digit(b: &[u8], pos: usize) -> bool {
    b.get(pos).is_some_and(u8::is_ascii_digit)
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        for i in 1..=4 {
                            if !b.get(*pos + i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                            }
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {pos}", pos = *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::check;

    #[test]
    fn accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "[1, 2.5, -3e4, \"a\\nb\", true, false, null]",
            "{\"a\": {\"b\": [1]}, \"c\": \"\\u00e9\"}",
            "  42  ",
        ] {
            check(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{a: 1}",
            "\"unterminated",
            "[1] extra",
            "01x",
            "\"bad \\q escape\"",
        ] {
            assert!(check(bad).is_err(), "{bad} should be rejected");
        }
    }
}
