//! Host wall-time profiling harness: the consumer side of
//! [`vta_sim::Profiler`], the simulator's second clock domain.
//!
//! The [`crate::perf`] module tracks *aggregate* host throughput (wall
//! seconds for whole sweeps); this module answers *where the wall time
//! goes*: it runs one benchmark with span profiling enabled, renders a
//! per-thread top-phases breakdown, attributes the simulated-side
//! manager's busy cycles to its four duties, and emits the
//! `BENCH_profile.json` trajectory artifact.
//!
//! Two invariants, inherited from the profiler itself:
//!
//! 1. Host wall numbers never feed fingerprints, `Stats`, or metrics
//!    series — they are host-scheduling-dependent by nature.
//! 2. Manager attribution goes the other way: it is derived entirely
//!    from deterministic simulated counters (`manager.*` in
//!    [`vta_sim::Stats`]), so it is bit-identical across host thread
//!    and fabric worker counts.
//!
//! Everything rendered here is hand-rolled text/JSON (the workspace has
//! a zero-external-dependency policy).

use std::fmt::Write as _;
use std::time::Instant;

use vta_dbt::{ManagerShardReport, System, VirtualArchConfig};
use vta_sim::{ProfConfig, ProfileReport, Stats, TraceConfig, Tracer};
use vta_workloads::Scale;

/// The simulated manager tile's busy cycles, attributed to its four
/// duties. Derived from the deterministic `manager.*` counters in
/// [`Stats`], so — unlike everything else profiling-related — these
/// numbers are part of the fingerprinted state and identical at every
/// host thread / fabric worker count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerActivity {
    /// Cycles assigning translation jobs to translator tiles
    /// (`manager.assign_cycles`).
    pub assign_cycles: u64,
    /// Cycles committing finished translations into the code cache
    /// (`manager.commit_cycles`).
    pub commit_cycles: u64,
    /// Cycles servicing L2 code-cache lookups and SMC invalidations
    /// (`manager.service_cycles`).
    pub service_cycles: u64,
    /// Cycles applying fabric morphs (`manager.morph_cycles`).
    pub morph_cycles: u64,
    /// Cycles the manager sat blocked on the DRAM `l2meta` walk after
    /// its fixed service time (`manager.dram_wait_cycles`). Reported
    /// beside the duties but **excluded from busy time**: the tile is
    /// stalled on memory, not doing work, and folding it into service
    /// used to overstate the serialization point.
    pub dram_wait_cycles: u64,
    /// Total simulated cycles of the run (the denominator).
    pub total_cycles: u64,
}

impl ManagerActivity {
    /// Extracts the attribution counters from a finished run.
    pub fn from_stats(stats: &Stats, total_cycles: u64) -> Self {
        ManagerActivity {
            assign_cycles: stats.get("manager.assign_cycles"),
            commit_cycles: stats.get("manager.commit_cycles"),
            service_cycles: stats.get("manager.service_cycles"),
            morph_cycles: stats.get("manager.morph_cycles"),
            dram_wait_cycles: stats.get("manager.dram_wait_cycles"),
            total_cycles,
        }
    }

    /// Total attributed manager-busy cycles (DRAM wait excluded — see
    /// [`ManagerActivity::dram_wait_cycles`]).
    pub fn busy_cycles(&self) -> u64 {
        self.assign_cycles + self.commit_cycles + self.service_cycles + self.morph_cycles
    }

    /// Manager occupancy: attributed busy cycles over total cycles.
    pub fn occupancy(&self) -> f64 {
        self.busy_cycles() as f64 / self.total_cycles.max(1) as f64
    }

    /// The four duties as `(name, cycles)` rows, largest first.
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        let mut rows = vec![
            ("assign", self.assign_cycles),
            ("commit", self.commit_cycles),
            ("service", self.service_cycles),
            ("morph", self.morph_cycles),
        ];
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        rows
    }
}

/// One profiled benchmark run: the host wall-time profile, the
/// simulated manager attribution, and the captured cycle trace (for
/// the merged two-clock Perfetto export).
#[derive(Debug)]
pub struct ProfiledRun {
    /// Benchmark short name.
    pub bench: String,
    /// Scale label (`"test"` / `"large"`).
    pub scale: &'static str,
    /// Host translator threads the system ran with.
    pub host_threads: usize,
    /// Fabric worker partitions the system ran with.
    pub fabric_workers: usize,
    /// Manager service shards the system ran with (attribution only:
    /// every deterministic field below is identical at every count).
    pub manager_shards: usize,
    /// Per-shard manager duty attribution, slave load, and L2
    /// residency (deterministic for a given shard count).
    pub shards: ManagerShardReport,
    /// Simulated cycles (deterministic).
    pub cycles: u64,
    /// Guest instructions retired (deterministic).
    pub guest_insns: u64,
    /// Host wall seconds inside `System::run`.
    pub wall_seconds: f64,
    /// The host wall-clock profile (second clock domain).
    pub profile: ProfileReport,
    /// Manager attribution from the simulated clock domain.
    pub manager: ManagerActivity,
    /// The simulated-cycle trace captured alongside.
    pub tracer: Tracer,
}

/// Runs `bench` at `scale` with profiling AND tracing enabled; returns
/// everything needed for the reports and the merged timeline export.
///
/// # Panics
///
/// Panics if the benchmark is unknown or the guest faults.
pub fn profile_benchmark(
    bench: &str,
    scale: Scale,
    host_threads: usize,
    fabric_workers: usize,
    manager_shards: usize,
    trace_capacity: usize,
) -> ProfiledRun {
    let w =
        vta_workloads::by_name(bench, scale).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let mut sys = System::new(VirtualArchConfig::paper_default(), &w.image);
    sys.set_host_threads(host_threads);
    sys.set_fabric_workers(fabric_workers);
    sys.set_manager_shards(manager_shards);
    sys.enable_tracing(TraceConfig {
        capacity: trace_capacity,
    });
    sys.enable_profiling(ProfConfig::default());
    let started = Instant::now();
    let report = sys
        .run(crate::RUN_BUDGET)
        .unwrap_or_else(|e| panic!("{bench}: {e}"));
    let wall_seconds = started.elapsed().as_secs_f64();
    let profile = sys.take_profile();
    let tracer = sys.take_tracer();
    let shards = sys.manager_shard_report();
    ProfiledRun {
        bench: bench.to_string(),
        scale: match scale {
            Scale::Test => "test",
            Scale::Small => "small",
            Scale::Large => "large",
        },
        host_threads,
        fabric_workers,
        manager_shards: sys.manager_shards(),
        shards,
        cycles: report.cycles,
        guest_insns: report.guest_insns,
        wall_seconds,
        profile,
        manager: ManagerActivity::from_stats(&report.stats, report.cycles),
        tracer,
    }
}

/// Renders the per-thread top-phases table: for every host thread,
/// its attributed busy time and each phase's **exclusive** wall share
/// of the whole run. Shares are percentages of the profiler's total
/// wall span, so rows compare on one scale across threads.
pub fn top_phases_report(p: &ProfileReport) -> String {
    let mut out = String::new();
    if p.threads.is_empty() {
        let _ = writeln!(
            out,
            "host wall profile: no samples (profiling disabled or `prof` feature off)"
        );
        return out;
    }
    let wall = p.wall_nanos.max(1) as f64;
    let _ = writeln!(
        out,
        "== host wall profile ({:.3}s wall, {} threads) ==",
        p.wall_nanos as f64 / 1e9,
        p.threads.len()
    );
    for t in &p.threads {
        let busy = t.busy_nanos();
        let _ = writeln!(
            out,
            "  {:<16} busy {:>9.3}ms  {:>5.1}% of wall",
            t.name,
            busy as f64 / 1e6,
            busy as f64 * 100.0 / wall
        );
        for ph in &t.phases {
            let _ = writeln!(
                out,
                "    {:<16} {:>9.3}ms  {:>5.1}%  {:>9}x",
                ph.phase,
                ph.nanos as f64 / 1e6,
                ph.nanos as f64 * 100.0 / wall,
                ph.count
            );
        }
        if t.dropped > 0 {
            let _ = writeln!(
                out,
                "    (timeline dropped {} events past capacity; totals are exact)",
                t.dropped
            );
        }
    }
    out
}

/// Renders the manager-duty breakdown (simulated clock domain).
pub fn manager_report(m: &ManagerActivity) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== manager activity (simulated cycles) ==");
    for (name, cycles) in m.rows() {
        let _ = writeln!(
            out,
            "  {:<9} {:>12} cycles  {:>5.1}%",
            name,
            cycles,
            cycles as f64 * 100.0 / m.total_cycles.max(1) as f64
        );
    }
    let _ = writeln!(
        out,
        "  dram_wait {:>12} cycles  {:>5.1}%  (memory stall, not busy)",
        m.dram_wait_cycles,
        m.dram_wait_cycles as f64 * 100.0 / m.total_cycles.max(1) as f64
    );
    let _ = writeln!(
        out,
        "  busy      {:>12} cycles  {:>5.1}% of {} simulated cycles",
        m.busy_cycles(),
        m.occupancy() * 100.0,
        m.total_cycles
    );
    out
}

/// Renders the per-shard manager attribution: duty cycles, handoffs,
/// slave load, and L2 residency per column stripe, plus the per-shard
/// max occupancy — the height of the serialization point after
/// sharding (compare against the single-shard aggregate).
pub fn shard_report(shards: &ManagerShardReport, total_cycles: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== manager shards ({} × column stripes, shared service ring) ==",
        shards.shards.len()
    );
    let denom = total_cycles.max(1) as f64;
    for (i, s) in shards.shards.iter().enumerate() {
        let (x0, x1) = shards.columns.get(i).copied().unwrap_or((0, 0));
        let _ = writeln!(
            out,
            "  shard {i} cols {x0}..{x1}: service {:>10}  dram_wait {:>10}  \
             commit {:>9}  assign {:>9}  busy {:>5.1}%  reqs {:>7}  handoffs {:>6}",
            s.service_cycles,
            s.dram_wait_cycles,
            s.commit_cycles,
            s.assign_cycles,
            s.busy_cycles() as f64 * 100.0 / denom,
            s.requests,
            s.handoffs_in,
        );
        let (sb, sc) = shards.slave_load.get(i).copied().unwrap_or((0, 0));
        let (lb, lby) = shards.l2_residency.get(i).copied().unwrap_or((0, 0));
        let _ = writeln!(
            out,
            "          slaves busy {sb} cycles / {sc} blocks; l2 {lb} blocks / {lby} bytes"
        );
    }
    let _ = writeln!(
        out,
        "  per-shard max busy: {} cycles ({:.1}% occupancy)",
        shards.max_busy_cycles(),
        shards.max_busy_cycles() as f64 * 100.0 / denom
    );
    out
}

/// Renders a [`ProfiledRun`] as the `BENCH_profile.json` document.
///
/// The manager section is deterministic; the `wall_seconds` and
/// per-thread nanosecond fields are host-dependent by nature (flagged
/// by `"host_dependent": true`), so the artifact is a trajectory to
/// eyeball, never something CI may diff.
pub fn render_profile_json(r: &ProfiledRun) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"experiment\": \"host_profile\",");
    let _ = writeln!(out, "  \"bench\": \"{}\",", r.bench);
    let _ = writeln!(out, "  \"scale\": \"{}\",", r.scale);
    let _ = writeln!(out, "  \"host_threads\": {},", r.host_threads);
    let _ = writeln!(out, "  \"fabric_workers\": {},", r.fabric_workers);
    let _ = writeln!(out, "  \"manager_shards\": {},", r.manager_shards);
    let _ = writeln!(out, "  \"host_dependent\": true,");
    let _ = writeln!(out, "  \"cycles\": {},", r.cycles);
    let _ = writeln!(out, "  \"guest_insns\": {},", r.guest_insns);
    let _ = writeln!(out, "  \"wall_seconds\": {:.3},", r.wall_seconds);
    let m = &r.manager;
    let _ = writeln!(out, "  \"manager\": {{");
    let _ = writeln!(out, "    \"assign_cycles\": {},", m.assign_cycles);
    let _ = writeln!(out, "    \"commit_cycles\": {},", m.commit_cycles);
    let _ = writeln!(out, "    \"service_cycles\": {},", m.service_cycles);
    let _ = writeln!(out, "    \"morph_cycles\": {},", m.morph_cycles);
    let _ = writeln!(out, "    \"dram_wait_cycles\": {},", m.dram_wait_cycles);
    let _ = writeln!(out, "    \"busy_cycles\": {},", m.busy_cycles());
    let _ = writeln!(out, "    \"occupancy\": {:.4}", m.occupancy());
    let _ = writeln!(out, "  }},");
    let denom = r.cycles.max(1) as f64;
    let _ = writeln!(out, "  \"shards\": [");
    for (i, s) in r.shards.shards.iter().enumerate() {
        let comma = if i + 1 == r.shards.shards.len() {
            ""
        } else {
            ","
        };
        let (x0, x1) = r.shards.columns.get(i).copied().unwrap_or((0, 0));
        let (slave_busy, slave_completed) = r.shards.slave_load.get(i).copied().unwrap_or((0, 0));
        let (l2_blocks, l2_bytes) = r.shards.l2_residency.get(i).copied().unwrap_or((0, 0));
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"shard\": {i},");
        let _ = writeln!(out, "      \"columns\": [{x0}, {x1}],");
        let _ = writeln!(out, "      \"service_cycles\": {},", s.service_cycles);
        let _ = writeln!(out, "      \"dram_wait_cycles\": {},", s.dram_wait_cycles);
        let _ = writeln!(out, "      \"commit_cycles\": {},", s.commit_cycles);
        let _ = writeln!(out, "      \"assign_cycles\": {},", s.assign_cycles);
        let _ = writeln!(out, "      \"morph_cycles\": {},", s.morph_cycles);
        let _ = writeln!(out, "      \"requests\": {},", s.requests);
        let _ = writeln!(out, "      \"handoffs_in\": {},", s.handoffs_in);
        let _ = writeln!(out, "      \"busy_cycles\": {},", s.busy_cycles());
        let _ = writeln!(
            out,
            "      \"occupancy\": {:.4},",
            s.busy_cycles() as f64 / denom
        );
        let _ = writeln!(out, "      \"slave_busy_cycles\": {slave_busy},");
        let _ = writeln!(out, "      \"slave_completed\": {slave_completed},");
        let _ = writeln!(out, "      \"l2_blocks\": {l2_blocks},");
        let _ = writeln!(out, "      \"l2_bytes\": {l2_bytes}");
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"per_shard_max_occupancy\": {:.4},",
        r.shards.max_busy_cycles() as f64 / denom
    );
    let _ = writeln!(out, "  \"threads\": [");
    for (i, t) in r.profile.threads.iter().enumerate() {
        let comma = if i + 1 == r.profile.threads.len() {
            ""
        } else {
            ","
        };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", t.name);
        let _ = writeln!(out, "      \"busy_nanos\": {},", t.busy_nanos());
        let _ = writeln!(out, "      \"dropped_events\": {},", t.dropped);
        let _ = writeln!(out, "      \"phases\": [");
        for (j, ph) in t.phases.iter().enumerate() {
            let pcomma = if j + 1 == t.phases.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "        {{ \"phase\": \"{}\", \"nanos\": {}, \"count\": {} }}{pcomma}",
                ph.phase, ph.nanos, ph.count
            );
        }
        let _ = writeln!(out, "      ]");
        let _ = writeln!(out, "    }}{comma}");
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

/// Benchmarks the profiler's own overhead: the four fingerprint
/// benchmarks at `Scale::Test`, run with profiling off and on,
/// interleaved `repeats` times (alternating order so slow host drift
/// hits both sides equally). Returns `(min_off, min_on)` wall seconds
/// — minima, because scheduler noise only ever *adds* time, so the
/// min-of-N pair isolates the instrumentation's real cost where a
/// median would still carry the noise floor.
///
/// The instrumented paths only read the host clock on slow paths
/// (translation, commits, morphs — never per-block dispatch), so the
/// ratio should be within noise of 1.0; ci.sh gates it at 5%.
pub fn profile_overhead(repeats: usize) -> (f64, f64) {
    let suite: Vec<_> = crate::perf::SUPERBLOCK_BENCHES
        .iter()
        .map(|name| vta_workloads::by_name(name, Scale::Test).expect("benchmark exists"))
        .collect();
    let run_once = |profiled: bool| {
        let started = Instant::now();
        for w in &suite {
            let mut sys = System::new(VirtualArchConfig::paper_default(), &w.image);
            if profiled {
                sys.enable_profiling(ProfConfig::default());
            }
            sys.run(crate::RUN_BUDGET).expect("benchmark runs");
            if profiled {
                sys.take_profile();
            }
        }
        started.elapsed().as_secs_f64()
    };
    let mut off = Vec::new();
    let mut on = Vec::new();
    for rep in 0..repeats.max(1) {
        if rep % 2 == 0 {
            off.push(run_once(false));
            on.push(run_once(true));
        } else {
            on.push(run_once(true));
            off.push(run_once(false));
        }
    }
    let min = |v: Vec<f64>| v.into_iter().fold(f64::INFINITY, f64::min);
    (min(off), min(on))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vta_sim::{PhaseTotal, ThreadProfile};

    fn sample_report() -> ProfileReport {
        ProfileReport {
            wall_nanos: 2_000_000,
            threads: vec![
                ThreadProfile {
                    name: "host.worker0".to_string(),
                    phases: vec![
                        PhaseTotal {
                            phase: "host.translate",
                            nanos: 900_000,
                            count: 12,
                        },
                        PhaseTotal {
                            phase: "host.commit",
                            nanos: 100_000,
                            count: 12,
                        },
                    ],
                    events: Vec::new(),
                    dropped: 3,
                },
                ThreadProfile {
                    name: "run".to_string(),
                    phases: vec![PhaseTotal {
                        phase: "run.dispatch",
                        nanos: 1_500_000,
                        count: 400,
                    }],
                    events: Vec::new(),
                    dropped: 0,
                },
            ],
        }
    }

    fn sample_run() -> ProfiledRun {
        let mut stats = Stats::new();
        stats.add("manager.assign_cycles", 300);
        stats.add("manager.commit_cycles", 200);
        stats.add("manager.service_cycles", 400);
        stats.add("manager.morph_cycles", 100);
        stats.add("manager.dram_wait_cycles", 50);
        let shards = ManagerShardReport {
            shards: vec![
                vta_dbt::ShardDuty {
                    service_cycles: 250,
                    dram_wait_cycles: 50,
                    commit_cycles: 200,
                    assign_cycles: 300,
                    morph_cycles: 100,
                    requests: 3,
                    handoffs_in: 0,
                },
                vta_dbt::ShardDuty {
                    service_cycles: 150,
                    requests: 2,
                    handoffs_in: 2,
                    ..Default::default()
                },
            ],
            columns: vec![(0, 2), (2, 4)],
            slave_load: vec![(900, 7), (300, 2)],
            l2_residency: vec![(5, 640), (4, 512)],
        };
        ProfiledRun {
            bench: "crafty".to_string(),
            scale: "test",
            host_threads: 2,
            fabric_workers: 1,
            manager_shards: 2,
            shards,
            cycles: 10_000,
            guest_insns: 5_000,
            wall_seconds: 0.002,
            profile: sample_report(),
            manager: ManagerActivity::from_stats(&stats, 10_000),
            tracer: Tracer::disabled(),
        }
    }

    #[test]
    fn manager_activity_math() {
        let m = sample_run().manager;
        assert_eq!(m.assign_cycles, 300);
        assert_eq!(m.busy_cycles(), 1000);
        assert!((m.occupancy() - 0.1).abs() < 1e-9);
        // Rows come out largest-first.
        assert_eq!(m.rows()[0], ("service", 400));
        assert_eq!(m.rows()[3], ("morph", 100));
    }

    #[test]
    fn top_phases_table_mentions_threads_and_shares() {
        let s = top_phases_report(&sample_report());
        assert!(s.contains("host.worker0"), "{s}");
        assert!(s.contains("host.translate"), "{s}");
        // 900µs of a 2ms wall = 45.0%.
        assert!(s.contains("45.0%"), "{s}");
        assert!(s.contains("dropped 3 events"), "{s}");
        // Empty report degrades to a one-line note.
        let empty = top_phases_report(&ProfileReport::default());
        assert!(empty.contains("no samples"), "{empty}");
    }

    #[test]
    fn manager_report_mentions_all_duties() {
        let s = manager_report(&sample_run().manager);
        for duty in ["assign", "commit", "service", "morph", "dram_wait", "busy"] {
            assert!(s.contains(duty), "{duty} missing from {s}");
        }
        // dram_wait (50 cycles here) must NOT count toward busy time.
        assert!(s.contains("10.0% of 10000 simulated cycles"), "{s}");
        assert!(s.contains("memory stall, not busy"), "{s}");
    }

    #[test]
    fn shard_report_shows_per_shard_peak() {
        let r = sample_run();
        let s = shard_report(&r.shards, r.cycles);
        assert!(s.contains("shard 0 cols 0..2"), "{s}");
        assert!(s.contains("shard 1 cols 2..4"), "{s}");
        assert!(s.contains("handoffs      2"), "{s}");
        assert!(s.contains("slaves busy 900 cycles / 7 blocks"), "{s}");
        assert!(s.contains("l2 4 blocks / 512 bytes"), "{s}");
        // Shard 0 is the peak: 250+200+300+100 = 850 busy cycles = 8.5%.
        assert!(
            s.contains("per-shard max busy: 850 cycles (8.5% occupancy)"),
            "{s}"
        );
    }

    #[test]
    fn profile_json_is_valid_and_complete() {
        let s = render_profile_json(&sample_run());
        crate::json_lint::check(&s).expect("valid JSON");
        assert!(s.contains("\"experiment\": \"host_profile\""));
        assert!(s.contains("\"host_dependent\": true"));
        assert!(s.contains("\"service_cycles\": 400"));
        assert!(s.contains("\"dram_wait_cycles\": 50"));
        assert!(s.contains("\"occupancy\": 0.1000"));
        assert!(s.contains("\"phase\": \"run.dispatch\""));
        assert!(s.contains("\"dropped_events\": 3"));
        // Per-shard section: both shards, their stripes, handoffs, and
        // the partitioned slave/L2 views.
        assert!(s.contains("\"manager_shards\": 2"));
        assert!(s.contains("\"shard\": 1"));
        assert!(s.contains("\"columns\": [2, 4]"));
        assert!(s.contains("\"handoffs_in\": 2"));
        assert!(s.contains("\"slave_busy_cycles\": 900"));
        assert!(s.contains("\"l2_bytes\": 512"));
        assert!(s.contains("\"per_shard_max_occupancy\": 0.0850"));
    }

    // A real (tiny) profiled run: deterministic fields must match an
    // unprofiled run exactly, and with the feature on the report must
    // actually contain the coordinator thread.
    #[test]
    fn profiled_run_matches_unprofiled_simulation() {
        let r = profile_benchmark("gzip", Scale::Test, 1, 1, 2, 1024);
        let w = vta_workloads::by_name("gzip", Scale::Test).unwrap();
        let mut plain = System::new(VirtualArchConfig::paper_default(), &w.image);
        let report = plain.run(crate::RUN_BUDGET).expect("gzip runs");
        assert_eq!(r.cycles, report.cycles, "profiling must not change cycles");
        assert_eq!(r.guest_insns, report.guest_insns);
        assert_eq!(
            r.manager,
            ManagerActivity::from_stats(&report.stats, report.cycles),
            "manager attribution is deterministic"
        );
        assert_eq!(r.manager_shards, 2);
        // The per-shard duty sums telescope exactly to the aggregate
        // counters, DRAM wait included.
        let svc: u64 = r.shards.shards.iter().map(|s| s.service_cycles).sum();
        let wait: u64 = r.shards.shards.iter().map(|s| s.dram_wait_cycles).sum();
        assert_eq!(svc, r.manager.service_cycles);
        assert_eq!(wait, r.manager.dram_wait_cycles);
        if cfg!(feature = "prof") {
            assert!(
                r.profile.threads.iter().any(|t| t.name == "run"),
                "coordinator thread profile missing"
            );
        } else {
            assert!(r.profile.threads.is_empty());
        }
    }
}
