//! # vta-bench — the experiment harness
//!
//! Regenerates every figure and table of the paper's evaluation (§4) from
//! the simulated system. Each `figN` function returns a [`Table`] whose
//! rows are the eleven benchmarks and whose columns are the paper's
//! machine configurations; the `figures` binary prints them.
//!
//! Runs are embarrassingly parallel (each `(benchmark, config)` pair is
//! an independent simulation), so sweeps fan out across host threads with
//! crossbeam's scoped threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod table;

use vta_dbt::{RunReport, StopCause, System, VirtualArchConfig};
use vta_pentium::PentiumModel;
use vta_workloads::{Scale, Workload};
use vta_x86::GuestImage;

pub use table::Table;

/// Instruction budget for experiment runs (workloads terminate long
/// before this; the cap only guards against regressions).
pub const RUN_BUDGET: u64 = 2_000_000_000;

/// One measured `(benchmark, configuration)` cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (`164.gzip`, ...).
    pub bench: String,
    /// Configuration label.
    pub config: String,
    /// The DBT run report.
    pub report: RunReport,
    /// Modelled Pentium III cycles for the same program.
    pub piii_cycles: u64,
}

impl Measurement {
    /// The paper's slowdown metric.
    pub fn slowdown(&self) -> f64 {
        self.report.cycles as f64 / self.piii_cycles as f64
    }

    /// L2 code-cache accesses per cycle (Figure 6's y-axis).
    pub fn l2code_access_rate(&self) -> f64 {
        self.report.stats.get("l2code.access") as f64 / self.report.cycles as f64
    }

    /// L2 code-cache misses per access (Figure 7's y-axis).
    pub fn l2code_miss_rate(&self) -> f64 {
        let acc = self.report.stats.get("l2code.access");
        if acc == 0 {
            0.0
        } else {
            self.report.stats.get("l2code.miss") as f64 / acc as f64
        }
    }
}

/// Runs one benchmark image under `cfg` and under the PIII model.
///
/// # Panics
///
/// Panics if either machine faults — the differential tests guarantee
/// they do not.
pub fn measure(bench: &str, image: &GuestImage, config_label: &str, cfg: VirtualArchConfig) -> Measurement {
    let report = System::new(cfg, image)
        .run(RUN_BUDGET)
        .unwrap_or_else(|e| panic!("{bench}/{config_label}: {e}"));
    assert_eq!(
        report.stop,
        StopCause::Exit,
        "{bench}/{config_label} must run to completion"
    );
    let piii = PentiumModel::new()
        .run(image, RUN_BUDGET)
        .unwrap_or_else(|e| panic!("{bench}: pentium model: {e}"));
    Measurement {
        bench: bench.to_string(),
        config: config_label.to_string(),
        report,
        piii_cycles: piii.cycles,
    }
}

/// Fans a set of `(config_label, config)` pairs across every benchmark,
/// running all simulations in parallel host threads.
pub fn sweep(
    scale: Scale,
    configs: &[(String, VirtualArchConfig)],
) -> Vec<Measurement> {
    let suite: Vec<Workload> = vta_workloads::all(scale);
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for b in 0..suite.len() {
        for c in 0..configs.len() {
            jobs.push((b, c));
        }
    }

    let results: Vec<Measurement> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(b, c)| {
                let w = &suite[b];
                let (label, cfg) = &configs[c];
                s.spawn(move |_| measure(w.name, &w.image, label, cfg.clone()))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("run panicked")).collect()
    })
    .expect("scope");
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_sane_slowdown() {
        let w = vta_workloads::by_name("gzip", Scale::Test).unwrap();
        let m = measure(
            w.name,
            &w.image,
            "default",
            VirtualArchConfig::paper_default(),
        );
        assert!(m.slowdown() > 1.0, "the emulator cannot beat the PIII");
        assert!(m.slowdown() < 500.0, "slowdown out of plausible range");
    }

    #[test]
    fn sweep_covers_all_pairs() {
        let configs = vec![
            ("a".to_string(), VirtualArchConfig::paper_default()),
            ("b".to_string(), VirtualArchConfig::with_translators(2, true)),
        ];
        let ms = sweep(Scale::Test, &configs);
        assert_eq!(ms.len(), 11 * 2);
    }
}
