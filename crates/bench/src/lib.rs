//! # vta-bench — the experiment harness
//!
//! Regenerates every figure and table of the paper's evaluation (§4) from
//! the simulated system. Each `figN` function returns a [`Table`] whose
//! rows are the eleven benchmarks and whose columns are the paper's
//! machine configurations; the `figures` binary prints them.
//!
//! Runs are embarrassingly parallel (each `(benchmark, config)` pair is
//! an independent simulation), so sweeps fan out across host threads with
//! `std::thread::scope`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod json_lint;
pub mod metrics;
pub mod perf;
pub mod profile;
pub mod table;
pub mod trace;

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use vta_dbt::{RunReport, SharedTranslations, StopCause, System, VirtualArchConfig};
use vta_ir::OptLevel;
use vta_pentium::PentiumModel;
use vta_workloads::{Scale, Workload};
use vta_x86::GuestImage;

pub use table::Table;

/// Instruction budget for experiment runs (workloads terminate long
/// before this; the cap only guards against regressions).
pub const RUN_BUDGET: u64 = 2_000_000_000;

/// One measured `(benchmark, configuration)` cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (`164.gzip`, ...).
    pub bench: String,
    /// Configuration label.
    pub config: String,
    /// The DBT run report.
    pub report: RunReport,
    /// Modelled Pentium III cycles for the same program.
    pub piii_cycles: u64,
    /// Host wall-clock seconds spent inside `System::run` for this cell.
    pub wall_seconds: f64,
}

impl Measurement {
    /// The paper's slowdown metric.
    pub fn slowdown(&self) -> f64 {
        self.report.cycles as f64 / self.piii_cycles as f64
    }

    /// L2 code-cache accesses per cycle (Figure 6's y-axis).
    pub fn l2code_access_rate(&self) -> f64 {
        self.report.stats.get("l2code.access") as f64 / self.report.cycles as f64
    }

    /// L2 code-cache misses per access (Figure 7's y-axis).
    pub fn l2code_miss_rate(&self) -> f64 {
        let acc = self.report.stats.get("l2code.access");
        if acc == 0 {
            0.0
        } else {
            self.report.stats.get("l2code.miss") as f64 / acc as f64
        }
    }

    /// Host simulation throughput in guest instructions per wall second.
    pub fn guest_insns_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.report.guest_insns as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Host simulation throughput in simulated cycles per wall second.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.report.cycles as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Runs one benchmark image under `cfg` and under the PIII model.
///
/// # Panics
///
/// Panics if either machine faults — the differential tests guarantee
/// they do not.
pub fn measure(
    bench: &str,
    image: &GuestImage,
    config_label: &str,
    cfg: VirtualArchConfig,
) -> Measurement {
    measure_cell(bench, image, config_label, cfg, None, None)
}

/// Like [`measure`], with the cross-cell accelerators a sweep can supply:
/// a [`SharedTranslations`] memo (cells of one benchmark retranslate the
/// same blocks) and a precomputed PIII cycle count (identical for every
/// configuration of one benchmark). Neither changes any simulated number.
pub fn measure_cell(
    bench: &str,
    image: &GuestImage,
    config_label: &str,
    cfg: VirtualArchConfig,
    shared: Option<&Arc<SharedTranslations>>,
    piii_cycles: Option<u64>,
) -> Measurement {
    let started = Instant::now();
    let mut system = System::new(cfg, image);
    if let Some(sh) = shared {
        system.attach_shared(Arc::clone(sh));
    }
    let report = system
        .run(RUN_BUDGET)
        .unwrap_or_else(|e| panic!("{bench}/{config_label}: {e}"));
    let wall_seconds = started.elapsed().as_secs_f64();
    assert_eq!(
        report.stop,
        StopCause::Exit,
        "{bench}/{config_label} must run to completion"
    );
    let piii_cycles = piii_cycles.unwrap_or_else(|| piii_cycles_for(bench, image));
    Measurement {
        bench: bench.to_string(),
        config: config_label.to_string(),
        report,
        piii_cycles,
        wall_seconds,
    }
}

/// Models the PIII baseline once for `image`.
///
/// # Panics
///
/// Panics if the model faults (the differential tests guarantee it
/// does not).
pub fn piii_cycles_for(bench: &str, image: &GuestImage) -> u64 {
    PentiumModel::new()
        .run(image, RUN_BUDGET)
        .unwrap_or_else(|e| panic!("{bench}: pentium model: {e}"))
        .cycles
}

/// One [`SharedTranslations`] memo per distinct `(opt level, superblock)`
/// pair in `configs` — translations formed under different region limits
/// are not interchangeable, and `attach_shared` would (silently) refuse
/// a memo whose limits disagree with the system's.
fn shared_per_opt(
    configs: &[(String, VirtualArchConfig)],
) -> HashMap<(OptLevel, bool), Arc<SharedTranslations>> {
    let mut memos = HashMap::new();
    for (_, cfg) in configs {
        memos
            .entry((cfg.opt, cfg.superblock))
            .or_insert_with(|| SharedTranslations::with_limits(cfg.opt, cfg.region_limits()));
    }
    memos
}

/// Runs `f(0..n)` on at most `threads` scoped host threads, returning
/// the results in index order.
///
/// Work is pulled from a shared counter (no pre-partitioning, so slow
/// items don't strand a thread's whole share) and each result is tagged
/// with its index, so the output is deterministic — identical to a
/// serial `(0..n).map(f)` — for any thread count.
pub(crate) fn bounded_map<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.clamp(1, n.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bounded_map worker panicked"))
            .collect()
    });
    let mut all: Vec<(usize, T)> = parts.into_iter().flatten().collect();
    all.sort_by_key(|&(i, _)| i);
    all.into_iter().map(|(_, t)| t).collect()
}

/// Fans a set of `(config_label, config)` pairs across every benchmark,
/// running all simulations in parallel host threads (one per cell).
pub fn sweep(scale: Scale, configs: &[(String, VirtualArchConfig)]) -> Vec<Measurement> {
    sweep_threads(scale, configs, usize::MAX)
}

/// Like [`sweep`], bounded to at most `threads` concurrent simulations.
///
/// The result vector is identical (order and content) for every
/// `threads` value: cells are placed by job index and each cell is an
/// independent deterministic simulation.
pub fn sweep_threads(
    scale: Scale,
    configs: &[(String, VirtualArchConfig)],
    threads: usize,
) -> Vec<Measurement> {
    let suite: Vec<Workload> = vta_workloads::all(scale);
    let mut jobs: Vec<(usize, usize)> = Vec::new();
    for b in 0..suite.len() {
        for c in 0..configs.len() {
            jobs.push((b, c));
        }
    }

    // Per-benchmark accelerators shared by that benchmark's cells: the
    // translation memo (per opt level) and the PIII baseline cycles.
    let memos: Vec<HashMap<(OptLevel, bool), Arc<SharedTranslations>>> =
        suite.iter().map(|_| shared_per_opt(configs)).collect();
    let piii: Vec<u64> = bounded_map(threads, suite.len(), |b| {
        piii_cycles_for(suite[b].name, &suite[b].image)
    });

    bounded_map(threads, jobs.len(), |j| {
        let (b, c) = jobs[j];
        let w = &suite[b];
        let (label, cfg) = &configs[c];
        measure_cell(
            w.name,
            &w.image,
            label,
            cfg.clone(),
            memos[b].get(&(cfg.opt, cfg.superblock)),
            Some(piii[b]),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_sane_slowdown() {
        let w = vta_workloads::by_name("gzip", Scale::Test).unwrap();
        let m = measure(
            w.name,
            &w.image,
            "default",
            VirtualArchConfig::paper_default(),
        );
        assert!(m.slowdown() > 1.0, "the emulator cannot beat the PIII");
        assert!(m.slowdown() < 500.0, "slowdown out of plausible range");
    }

    #[test]
    fn sweep_covers_all_pairs() {
        let configs = vec![
            ("a".to_string(), VirtualArchConfig::paper_default()),
            (
                "b".to_string(),
                VirtualArchConfig::with_translators(2, true),
            ),
        ];
        let ms = sweep(Scale::Test, &configs);
        assert_eq!(ms.len(), 11 * 2);
    }

    #[test]
    fn bounded_sweep_is_thread_count_invariant() {
        let configs = vec![("a".to_string(), VirtualArchConfig::paper_default())];
        let serial = sweep_threads(Scale::Test, &configs, 1);
        let bounded = sweep_threads(Scale::Test, &configs, 3);
        assert_eq!(serial.len(), bounded.len());
        for (s, b) in serial.iter().zip(&bounded) {
            assert_eq!(s.bench, b.bench, "canonical job order");
            assert_eq!(s.report.cycles, b.report.cycles, "{}", s.bench);
            assert_eq!(s.report.stats, b.report.stats, "{}", s.bench);
        }
    }

    #[test]
    fn bounded_map_matches_serial_for_any_width() {
        let serial: Vec<usize> = (0..97).map(|i| i * 3).collect();
        for threads in [1, 2, 5, 200] {
            assert_eq!(bounded_map(threads, 97, |i| i * 3), serial);
        }
        assert!(bounded_map(4, 0, |i| i).is_empty());
    }
}
