//! Metrics consumers: windowed-series export (CSV/JSON) and the phase
//! report.
//!
//! The simulator's [`Metrics`] recorder closes one window of counter
//! deltas + gauge samples every `interval` simulated cycles (see
//! `vta_sim::metrics`); this module turns a finished series into things a
//! human (or CI diff) can look at:
//!
//! - [`series_csv`] — one row per window, one column per counter delta,
//!   gauge, and derived rate. Byte-stable for a given (image, config,
//!   interval), so CI diffs it against a committed golden.
//! - [`series_json`] — the same series as a JSON document, for tooling.
//! - [`phase_summary`] — a plain-text phase report: warm-up vs
//!   steady-state CPI, peak queue depth, morph activity and lag, and the
//!   host worker-pool counters when a pool ran.
//!
//! Like the trace exporters, everything is hand-rolled: the workspace has
//! a zero-external-dependency policy.

use std::fmt::Write as _;

use vta_dbt::{HostPerf, RunReport, System, VirtualArchConfig};
use vta_sim::{Ctr, GaugeId, Metrics, MetricsConfig, Window};
use vta_workloads::Scale;

/// Runs `bench` at `scale` under `cfg` with windowed metrics enabled,
/// on `threads` host threads; returns the run report, the sealed series,
/// and the worker-pool counters (when `threads > 1`).
///
/// # Panics
///
/// Panics if the benchmark is unknown or the guest faults.
pub fn metrics_benchmark(
    bench: &str,
    scale: Scale,
    cfg: VirtualArchConfig,
    mcfg: MetricsConfig,
    threads: usize,
) -> (RunReport, Metrics, Option<HostPerf>) {
    let w =
        vta_workloads::by_name(bench, scale).unwrap_or_else(|| panic!("unknown benchmark {bench}"));
    let mut system = System::new(cfg, &w.image);
    system.set_host_threads(threads);
    system.enable_metrics(mcfg);
    let report = system
        .run(crate::RUN_BUDGET)
        .unwrap_or_else(|e| panic!("{bench}: {e}"));
    let host = system.host_perf();
    (report, system.take_metrics(), host)
}

/// D-cache miss rate over a window: data accesses NOT served by the L1
/// D-cache, over all data accesses.
fn dcache_miss_rate(w: &Window) -> Option<f64> {
    let l1 = w.delta(Ctr::MemL1Hit);
    let miss = w.delta(Ctr::MemL2Hit) + w.delta(Ctr::MemDram);
    let total = l1 + miss;
    (total != 0).then(|| miss as f64 / total as f64)
}

/// Appends a fixed-precision optional rate (empty cell when undefined).
fn push_rate(out: &mut String, r: Option<f64>) {
    match r {
        Some(v) => {
            let _ = write!(out, ",{v:.6}");
        }
        None => out.push(','),
    }
}

/// Renders the series as CSV: `start,end`, one column per interned
/// counter delta (signed: morphing can retire counts mid-window), one per
/// registered gauge, then the derived `cpi`, `l1code_miss_rate`, and
/// `dcache_miss_rate`. Undefined rates (no events in the window) are
/// empty cells. The output is byte-stable for a fixed (image, config,
/// interval), which is what the CI golden diff relies on.
pub fn series_csv(m: &Metrics) -> String {
    let mut out = String::from("start,end");
    for &c in Ctr::ALL.iter() {
        let _ = write!(out, ",{}", c.name());
    }
    for (_, name) in m.gauges() {
        let _ = write!(out, ",{name}");
    }
    out.push_str(",cpi,l1code_miss_rate,dcache_miss_rate\n");
    for w in m.windows() {
        let _ = write!(out, "{},{}", w.start, w.end);
        for &c in Ctr::ALL.iter() {
            let _ = write!(out, ",{}", w.delta_i64(c));
        }
        // Gauges registered after a window closed are absent from it;
        // pad those cells so every row has the full column count.
        for i in 0..m.gauge_count() {
            match w.gauge(GaugeId(i as u16)) {
                Some(v) => {
                    let _ = write!(out, ",{v}");
                }
                None => out.push(','),
            }
        }
        push_rate(&mut out, w.cpi());
        push_rate(&mut out, w.miss_rate(Ctr::L1CodeMiss, Ctr::L1CodeHit));
        push_rate(&mut out, dcache_miss_rate(w));
        out.push('\n');
    }
    out
}

/// Renders the series as a JSON document: interval, gauge names, one
/// object per window (counter deltas keyed by name, gauge array, derived
/// rates as numbers or `null`), and the point annotations.
pub fn series_json(m: &Metrics) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"interval\": {},", m.interval());
    let _ = writeln!(out, "  \"dropped_windows\": {},", m.dropped());
    let names: Vec<&str> = m.gauges().map(|(_, n)| n).collect();
    let _ = write!(out, "  \"gauges\": [");
    for (i, n) in names.iter().enumerate() {
        let comma = if i + 1 == names.len() { "" } else { ", " };
        let _ = write!(out, "\"{n}\"{comma}");
    }
    let _ = writeln!(out, "],");
    let _ = writeln!(out, "  \"windows\": [");
    let nwin = m.len();
    for (i, w) in m.windows().enumerate() {
        let _ = write!(
            out,
            "    {{\"start\":{},\"end\":{},\"ctrs\":{{",
            w.start, w.end
        );
        let mut firstc = true;
        for &c in Ctr::ALL.iter() {
            let d = w.delta_i64(c);
            if d == 0 {
                continue; // sparse: most counters are quiet most windows
            }
            if !firstc {
                out.push(',');
            }
            firstc = false;
            let _ = write!(out, "\"{}\":{}", c.name(), d);
        }
        let _ = write!(out, "}},\"gauges\":[");
        for i in 0..m.gauge_count() {
            if i > 0 {
                out.push(',');
            }
            match w.gauge(GaugeId(i as u16)) {
                Some(v) => {
                    let _ = write!(out, "{v}");
                }
                None => out.push_str("null"),
            }
        }
        let _ = write!(out, "],\"cpi\":");
        match w.cpi() {
            Some(v) => {
                let _ = write!(out, "{v:.6}");
            }
            None => out.push_str("null"),
        }
        let comma = if i + 1 == nwin { "" } else { "," };
        let _ = writeln!(out, "}}{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"events\": [");
    let nev = m.events().count();
    for (i, e) in m.events().enumerate() {
        let comma = if i + 1 == nev { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"ts\":{},\"name\":\"{}\",\"value\":{}}}{comma}",
            e.ts, e.name, e.value
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"events_dropped\": {}", m.events_dropped());
    let _ = writeln!(out, "}}");
    out
}

/// CPI over a slice of windows (sum of cycle deltas over sum of retired
/// instructions), if any instructions retired.
fn slice_cpi(ws: &[&Window]) -> Option<f64> {
    let cycles: i64 = ws.iter().map(|w| w.delta_i64(Ctr::Cycles)).sum();
    let insns: i64 = ws.iter().map(|w| w.delta_i64(Ctr::GuestInsns)).sum();
    (insns > 0).then(|| cycles as f64 / insns as f64)
}

fn fmt_cpi(c: Option<f64>) -> String {
    c.map_or_else(|| "-".to_string(), |v| format!("{v:.3}"))
}

/// Renders the plain-text phase report for a finished run.
///
/// The warm-up phase is the window prefix holding 95% of all committed
/// translations (translation is front-loaded: once the code cache holds
/// the working set, commits stop); everything after is steady state. The
/// report compares the two phases' CPI, shows the peak speculation-queue
/// depth and translator occupancy span, summarizes morph activity with
/// the decision lag recorded by the manager, and appends the host
/// worker-pool counters when a pool ran.
pub fn phase_summary(m: &Metrics, report: &RunReport, host: Option<&HostPerf>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Phase report: {} cycles, {} guest insns, CPI {:.3} ==",
        report.cycles,
        report.guest_insns,
        report.cycles as f64 / report.guest_insns.max(1) as f64
    );
    let ws: Vec<&Window> = m.windows().collect();
    if ws.is_empty() {
        let _ = writeln!(out, "  (no windows recorded; metrics disabled?)");
        return out;
    }
    let _ = writeln!(
        out,
        "  {} windows of {} cycles ({} evicted from the ring)",
        ws.len(),
        m.interval(),
        m.dropped()
    );

    // Warm-up boundary: smallest prefix with >= 95% of all commits.
    let total_commits: i64 = ws
        .iter()
        .map(|w| w.delta_i64(Ctr::TranslateCommitted))
        .sum();
    let mut cut = ws.len();
    let mut acc = 0i64;
    for (i, w) in ws.iter().enumerate() {
        acc += w.delta_i64(Ctr::TranslateCommitted);
        if acc * 100 >= total_commits * 95 {
            cut = i + 1;
            break;
        }
    }
    let (warm, steady) = ws.split_at(cut.min(ws.len()));
    let warm_end = warm.last().map_or(0, |w| w.end);
    let _ = writeln!(
        out,
        "  warm-up    : cycles 0..{warm_end} ({} windows, {} commits) CPI {}",
        warm.len(),
        acc,
        fmt_cpi(slice_cpi(warm))
    );
    if steady.is_empty() {
        let _ = writeln!(out, "  steady     : (run ended inside warm-up)");
    } else {
        let _ = writeln!(
            out,
            "  steady     : cycles {warm_end}..{} ({} windows) CPI {}",
            steady.last().expect("nonempty").end,
            steady.len(),
            fmt_cpi(slice_cpi(steady))
        );
    }

    // Peak gauge readings, by registered name.
    let peak = |name: &str| -> Option<(u64, u64)> {
        let id = m.gauges().find(|(_, n)| *n == name)?.0;
        ws.iter()
            .filter_map(|w| w.gauge(id).map(|v| (v, w.end)))
            .max()
    };
    if let Some((v, at)) = peak("specq.len") {
        let _ = writeln!(out, "  spec queue : peak depth {v} (window ending {at})");
    }
    if let Some(id) = m
        .gauges()
        .find(|(_, n)| *n == "pool.translators")
        .map(|g| g.0)
    {
        let vals: Vec<u64> = ws.iter().filter_map(|w| w.gauge(id)).collect();
        if let (Some(&min), Some(&max)) = (vals.iter().min(), vals.iter().max()) {
            let _ = writeln!(out, "  translators: occupancy {min}..{max} tiles");
        }
    }

    // Morph activity: the events carry the manager's decision lag.
    let lags: Vec<u64> = m
        .events()
        .filter(|e| e.name.starts_with("morph."))
        .map(|e| e.value)
        .collect();
    if lags.is_empty() {
        let _ = writeln!(out, "  morphing   : no reconfigurations");
    } else {
        let max = lags.iter().max().copied().unwrap_or(0);
        let mean = lags.iter().sum::<u64>() as f64 / lags.len() as f64;
        let _ = writeln!(
            out,
            "  morphing   : {} reconfigurations, decision lag mean {mean:.0} max {max} cycles",
            lags.len()
        );
    }

    if let Some(h) = host {
        let _ = writeln!(
            out,
            "  host pool  : {} submitted, {} translated ({} failed), {} hits / {} stale / {} misses, \
             {} steals, {} discarded",
            h.submitted, h.translated, h.failed, h.hits, h.stale, h.misses, h.steals, h.discarded
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "metrics")]
    use vta_sim::Cycle;

    #[cfg(feature = "metrics")]
    fn sample_metrics() -> Metrics {
        let mut m = Metrics::new(MetricsConfig {
            interval: 100,
            max_windows: 16,
        });
        m.gauge("specq.len");
        m.gauge("pool.translators");
        let mut s = [0u64; Ctr::COUNT];
        s[Ctr::Cycles as usize] = 100;
        s[Ctr::GuestInsns as usize] = 50;
        s[Ctr::TranslateCommitted as usize] = 9;
        s[Ctr::MemL1Hit as usize] = 30;
        s[Ctr::MemDram as usize] = 10;
        m.sample(Cycle(100), &s, &[4, 6]);
        m.event(Cycle(120), "morph.to_translator", 40);
        let mut f = s;
        f[Ctr::Cycles as usize] = 180;
        f[Ctr::GuestInsns as usize] = 130;
        f[Ctr::TranslateCommitted as usize] = 9;
        m.finish(Cycle(180), &f, &[0, 9]);
        m
    }

    fn sample_report() -> RunReport {
        RunReport {
            stop: vta_dbt::StopCause::Exit,
            exit_code: Some(0),
            cycles: 180,
            guest_insns: 130,
            output: Vec::new(),
            stats: vta_sim::Stats::new(),
        }
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn csv_has_header_plus_one_row_per_window() {
        let m = sample_metrics();
        let csv = series_csv(&m);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + m.len());
        assert!(lines[0].starts_with("start,end,chain.taken,"));
        assert!(lines[0].contains(",specq.len,pool.translators,cpi,"));
        let cols = lines[0].split(',').count();
        for row in &lines[1..] {
            assert_eq!(row.split(',').count(), cols, "ragged row: {row}");
        }
        assert!(lines[1].starts_with("0,100,"));
        assert!(lines[1].ends_with(",2.000000,,0.250000"), "{}", lines[1]);
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn json_series_is_well_formed() {
        let m = sample_metrics();
        let s = series_json(&m);
        crate::json_lint::check(&s).expect("valid JSON");
        assert!(s.contains("\"gauges\": [\"specq.len\", \"pool.translators\"]"));
        assert!(s.contains("\"morph.to_translator\""));
        assert!(!s.contains("chain.taken"), "zero deltas stay sparse");
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn phase_report_splits_warmup_from_steady() {
        let m = sample_metrics();
        let r = phase_summary(&m, &sample_report(), None);
        // All 9 commits land in window 1, so warm-up is exactly window 1.
        assert!(r.contains("warm-up    : cycles 0..100"), "{r}");
        assert!(r.contains("steady     : cycles 100..180"), "{r}");
        assert!(r.contains("peak depth 4"), "{r}");
        assert!(r.contains("1 reconfigurations"), "{r}");
        assert!(r.contains("lag mean 40 max 40"), "{r}");
        assert!(!r.contains("host pool"), "no pool counters supplied");
        let h = HostPerf {
            submitted: 7,
            ..Default::default()
        };
        let r = phase_summary(&m, &sample_report(), Some(&h));
        assert!(r.contains("host pool  : 7 submitted"), "{r}");
    }

    #[test]
    fn empty_series_renders_without_panicking() {
        let m = Metrics::disabled();
        let csv = series_csv(&m);
        assert!(csv.starts_with("start,end"));
        crate::json_lint::check(&series_json(&m)).expect("valid JSON");
        let r = phase_summary(&m, &sample_report(), None);
        assert!(r.contains("Phase report"));
    }
}
