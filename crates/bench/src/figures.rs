//! One function per figure/table of the paper's evaluation section.

use vta_dbt::VirtualArchConfig;
use vta_ir::OptLevel;
use vta_workloads::Scale;

use crate::table::{Format, Table};
use crate::{sweep, Measurement};

fn labels(cfgs: &[(String, VirtualArchConfig)]) -> Vec<String> {
    cfgs.iter().map(|(l, _)| l.clone()).collect()
}

/// Figure 4: slowdown under three L1.5 code-cache configurations.
pub fn fig4(scale: Scale) -> Table {
    let configs = vec![
        ("no-L1.5".to_string(), VirtualArchConfig::with_l15_banks(0)),
        (
            "64K-1bank".to_string(),
            VirtualArchConfig::with_l15_banks(1),
        ),
        (
            "128K-2bank".to_string(),
            VirtualArchConfig::with_l15_banks(2),
        ),
    ];
    let ms = sweep(scale, &configs);
    Table::from_measurements(
        "Figure 4: Comparison of L1.5 Code Cache Sizes",
        "slowdown vs Pentium III (lower is better)",
        &labels(&configs),
        &ms,
        Format::Fixed1,
        Measurement::slowdown,
    )
}

/// The Figure 5 configuration set (also reused by Figures 6 and 7).
pub fn fig5_configs() -> Vec<(String, VirtualArchConfig)> {
    let mut v = vec![(
        "1-conservative".to_string(),
        VirtualArchConfig::with_translators(1, false),
    )];
    for n in [1usize, 2, 4, 6, 9] {
        v.push((
            format!("{n}-speculative"),
            VirtualArchConfig::with_translators(n, true),
        ));
    }
    v
}

/// Runs the Figure 5 sweep once (shared by Figures 5, 6 and 7).
pub fn fig5_measurements(scale: Scale) -> Vec<Measurement> {
    sweep(scale, &fig5_configs())
}

/// Figure 5: slowdown with differing numbers of translation tiles.
pub fn fig5(ms: &[Measurement]) -> Table {
    Table::from_measurements(
        "Figure 5: Comparison with Differing Numbers of Translation Tiles",
        "slowdown vs Pentium III (lower is better)",
        &labels(&fig5_configs()),
        ms,
        Format::Fixed1,
        Measurement::slowdown,
    )
}

/// Figure 6: L2 code-cache accesses per cycle (log scale in the paper).
pub fn fig6(ms: &[Measurement]) -> Table {
    Table::from_measurements(
        "Figure 6: Number of L2 Code Cache Accesses per Cycle",
        "accesses / cycle (log scale)",
        &labels(&fig5_configs()),
        ms,
        Format::Scientific,
        Measurement::l2code_access_rate,
    )
}

/// Figure 7: L2 code-cache misses per access.
pub fn fig7(ms: &[Measurement]) -> Table {
    Table::from_measurements(
        "Figure 7: Number of L2 Code Cache Misses per L2 Code Cache Access",
        "misses / access (log scale)",
        &labels(&fig5_configs()),
        ms,
        Format::Scientific,
        Measurement::l2code_miss_rate,
    )
}

/// Figure 8: with vs without code optimization (dynamic 6→9 config in
/// the paper; we use the same morphing configuration).
pub fn fig8(scale: Scale) -> Table {
    let mut no_opt = VirtualArchConfig::morphing(15);
    no_opt.opt = OptLevel::None;
    let with_opt = VirtualArchConfig::morphing(15);
    let configs = vec![
        ("no-opt".to_string(), no_opt),
        ("opt".to_string(), with_opt),
    ];
    let ms = sweep(scale, &configs);
    Table::from_measurements(
        "Figure 8: No Code Optimization versus Code Optimization",
        "slowdown vs Pentium III (lower is better)",
        &labels(&configs),
        &ms,
        Format::Fixed1,
        Measurement::slowdown,
    )
}

/// The Figure 9 configuration set.
pub fn fig9_configs() -> Vec<(String, VirtualArchConfig)> {
    vec![
        (
            "1mem/9trans".to_string(),
            VirtualArchConfig::mem_trans(1, 9),
        ),
        (
            "4mem/6trans".to_string(),
            VirtualArchConfig::mem_trans(4, 6),
        ),
        ("morph-t15".to_string(), VirtualArchConfig::morphing(15)),
        ("morph-t0".to_string(), VirtualArchConfig::morphing(0)),
        ("morph-t5".to_string(), VirtualArchConfig::morphing(5)),
    ]
}

/// Runs the Figure 9 sweep once (shared by Figures 9 and 10).
pub fn fig9_measurements(scale: Scale) -> Vec<Measurement> {
    sweep(scale, &fig9_configs())
}

/// Figure 9: static vs morphing configurations (absolute slowdown).
pub fn fig9(ms: &[Measurement]) -> Table {
    Table::from_measurements(
        "Figure 9: Trading Silicon Between L2 Data Cache and Translation",
        "slowdown vs Pentium III (lower is better)",
        &labels(&fig9_configs()),
        ms,
        Format::Fixed1,
        Measurement::slowdown,
    )
}

/// Figure 10: Figure 9 normalized to the 1mem/9trans configuration
/// (percent faster; higher is better).
pub fn fig10(ms: &[Measurement]) -> Table {
    let base = fig9(ms);
    let mut t = Table {
        title: "Figure 10: Relative Performance vs 1mem/9trans (higher is better)".to_string(),
        metric: "percent faster than the 1mem/9trans static configuration".to_string(),
        columns: base.columns[1..].to_vec(),
        rows: Vec::new(),
        format: Format::Percent,
    };
    for (bench, cells) in &base.rows {
        let reference = cells[0];
        let rel: Vec<f64> = cells[1..]
            .iter()
            .map(|&v| (reference / v - 1.0) * 100.0)
            .collect();
        t.rows.push((bench.clone(), rel));
    }
    t
}

/// Figure 11: architecture intrinsics (measured from the live models).
pub fn fig11() -> String {
    use vta_dbt::memsys::MemSys;
    use vta_dbt::Timing;
    use vta_raw::{Dram, TileId};
    use vta_sim::Cycle;

    let t = Timing::default();
    let exec = TileId::new(1, 1);
    let mmu = TileId::new(2, 1);
    let mut mem = MemSys::new(&[TileId::new(2, 2), TileId::new(3, 1)], 32 * 1024);
    let mut dram = Dram::new(t.dram_latency, t.dram_word);
    let tr = &mut vta_sim::Tracer::disabled();

    // Warm the TLB so the probes measure the memory path, not the walk.
    mem.access(Cycle(0), 0x0, false, exec, mmu, &mut dram, &t, tr);
    // DRAM miss with a warm TLB (same page, new line).
    let (miss, _) = mem.access(Cycle(10_000), 0x80, false, exec, mmu, &mut dram, &t, tr);
    // L1 hit.
    let (hit, _) = mem.access(Cycle(20_000), 0x80, false, exec, mmu, &mut dram, &t, tr);
    // Evict line 0 from the 2-way L1 set, leaving it in its L2 bank.
    mem.access(Cycle(30_000), 0x4000, false, exec, mmu, &mut dram, &t, tr);
    mem.access(Cycle(40_000), 0x8000, false, exec, mmu, &mut dram, &t, tr);
    let (l2hit, _) = mem.access(Cycle(50_000), 0x0, false, exec, mmu, &mut dram, &t, tr);

    let mut out = String::new();
    out.push_str("== Figure 11: Architecture Intrinsics ==\n");
    out.push_str("intrinsic        Raw emulator (measured)   PIII (model)   paper (emu/PIII)\n");
    out.push_str(&format!(
        "L1 cache hit     occ {hit:>3}                   lat {} occ 1    lat 6 occ 4 / lat 3 occ 1\n",
        vta_pentium::L1_LATENCY
    ));
    out.push_str(&format!(
        "L2 cache hit     occ {l2hit:>3}                   lat {} occ 1    lat/occ 87 / lat 7 occ 1\n",
        vta_pentium::L2_LATENCY
    ));
    out.push_str(&format!(
        "L2 cache miss    occ {miss:>3}                   lat {} occ 1   lat 151 occ 87 / lat 79 occ 1\n",
        vta_pentium::MEM_LATENCY
    ));
    out.push_str("exec units       1                         3              1 / 3\n");
    out
}

/// The §4.5 CPI decomposition.
pub fn cpi_analysis() -> String {
    use vta_pentium::analysis::{CpiInputs, LossBreakdown};
    let b = LossBreakdown::paper(CpiInputs::default());
    format!(
        "== Section 4.5: expected slowdown floor ==\n\
         memory system factor : {:.2}x (paper: 3.9x)\n\
         realized ILP factor  : {:.2}x (paper: 1.3x)\n\
         condition-code factor: {:.2}x (paper: 1.1x)\n\
         expected floor       : {:.2}x (paper: 5.5x)\n",
        b.memory,
        b.ilp,
        b.flags,
        b.expected_slowdown()
    )
}

/// The §1 headline: slowdown range across the suite at the default
/// configuration ("approximately a 7x-110x slowdown").
pub fn headline(scale: Scale) -> Table {
    let configs = vec![(
        "6-speculative".to_string(),
        VirtualArchConfig::paper_default(),
    )];
    let ms = sweep(scale, &configs);
    Table::from_measurements(
        "Headline: slowdown vs Pentium III at the default configuration",
        "slowdown (paper reports 7x-110x across SpecInt)",
        &labels(&configs),
        &ms,
        Format::Fixed1,
        Measurement::slowdown,
    )
}
