//! The windowed-series self-check, as a property over the whole suite:
//! for every benchmark, the per-interval series must sum (counters) and
//! weighted-average (derived rates) back to the end-of-run `Stats`
//! totals exactly — at 1 host thread and at 4, where the worker pool
//! races ahead of the simulated clock.
//!
//! Window contents are simulated-side only, so the series itself must
//! also be bit-identical across host thread counts.

#![cfg(feature = "metrics")]

use vta_bench::metrics::metrics_benchmark;
use vta_dbt::VirtualArchConfig;
use vta_sim::{Ctr, Metrics, MetricsConfig, Window};
use vta_workloads::Scale;

const INTERVAL: u64 = 25_000;

fn run(bench: &str, threads: usize) -> (u64, u64, vta_sim::Stats, Metrics) {
    let (report, m, _) = metrics_benchmark(
        bench,
        Scale::Test,
        VirtualArchConfig::paper_default(),
        MetricsConfig {
            interval: INTERVAL,
            ..MetricsConfig::default()
        },
        threads,
    );
    (report.cycles, report.guest_insns, report.stats, m)
}

#[test]
fn every_benchmark_series_reconciles_at_1_and_4_threads() {
    for name in vta_workloads::NAMES {
        let (cycles, insns, stats, serial) = run(name, 1);
        let (pcycles, pinsns, pstats, parallel) = run(name, 4);

        // The run itself is host-thread invariant (PR 3's invariant).
        assert_eq!(cycles, pcycles, "{}: cycles differ across threads", name);
        assert_eq!(insns, pinsns, "{}: insns differ across threads", name);
        assert_eq!(stats, pstats, "{}: stats differ across threads", name);

        for (label, m) in [("serial", &serial), ("parallel", &parallel)] {
            // Counter sums telescope to the totals for EVERY counter.
            m.reconcile_stats(&stats)
                .unwrap_or_else(|e| panic!("{}/{label}: {e}", name));

            // The two headline sums, spelled out: cycles and insns.
            let wsum = |c: Ctr| -> u64 {
                m.windows().fold(m.dropped_totals()[c as usize], |acc, w| {
                    acc.wrapping_add(w.delta(c))
                })
            };
            assert_eq!(wsum(Ctr::Cycles), cycles, "{}/{label}", name);
            assert_eq!(wsum(Ctr::GuestInsns), insns, "{}/{label}", name);

            // The weighted average of per-window CPI (weights = retired
            // instructions) is exactly the end-of-run CPI.
            let weighted: f64 = m
                .windows()
                .filter_map(|w: &Window| w.cpi().map(|c| c * w.delta(Ctr::GuestInsns) as f64))
                .sum();
            let end_cpi = cycles as f64 / insns as f64;
            let avg = weighted / insns as f64;
            assert!(
                (avg - end_cpi).abs() < 1e-9 * end_cpi,
                "{}/{label}: weighted window CPI {avg} vs end-of-run {end_cpi}",
                name
            );

            // The final window closes exactly at the end of the run.
            let last = m.windows().last().expect("at least one window");
            assert_eq!(last.end, cycles, "{}/{label}", name);
        }

        // The simulated series is identical at both widths: same
        // windows, same counter deltas, same gauge samples for the
        // simulated gauges (host-pool gauges only exist at 4 threads,
        // appended after the shared prefix).
        let sw: Vec<&Window> = serial.windows().collect();
        let pw: Vec<&Window> = parallel.windows().collect();
        assert_eq!(sw.len(), pw.len(), "{}: window counts differ", name);
        let shared = serial.gauge_count();
        for (a, b) in sw.iter().zip(&pw) {
            assert_eq!((a.start, a.end), (b.start, b.end), "{}", name);
            assert_eq!(a.ctrs, b.ctrs, "{}: counter deltas differ", name);
            assert_eq!(
                &a.gauges[..shared.min(a.gauges.len())],
                &b.gauges[..shared.min(b.gauges.len())],
                "{}: simulated gauges differ across threads",
                name
            );
        }
    }
}
