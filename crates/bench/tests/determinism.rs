//! Determinism regression: the simulator is a pure function of
//! `(guest image, configuration)`. Two runs must agree bit-for-bit on
//! every simulated number — cycles, instruction counts, and the entire
//! statistics set — and host-side accelerators (the cross-system
//! translation memo) must not perturb any of it.

use std::sync::Arc;

use vta_bench::RUN_BUDGET;
use vta_dbt::{SharedTranslations, System, VirtualArchConfig};
use vta_sim::{MetricsConfig, TraceConfig};
use vta_workloads::Scale;

/// The tracer is an observer: running with tracing enabled must not
/// change a single simulated number relative to running without it.
#[test]
fn tracing_does_not_change_a_single_cycle() {
    let w = vta_workloads::by_name("gzip", Scale::Test).expect("gzip exists");
    let plain = System::new(VirtualArchConfig::paper_default(), &w.image)
        .run(RUN_BUDGET)
        .expect("gzip runs");
    let mut traced_sys = System::new(VirtualArchConfig::paper_default(), &w.image);
    traced_sys.enable_tracing(TraceConfig { capacity: 1 << 14 });
    let traced = traced_sys.run(RUN_BUDGET).expect("gzip runs");
    assert_eq!(plain.cycles, traced.cycles, "cycles must be bit-identical");
    assert_eq!(plain.guest_insns, traced.guest_insns);
    assert_eq!(plain.output, traced.output);
    assert_eq!(plain.stats, traced.stats, "all counters identical");
    let tracer = traced_sys.take_tracer();
    // Without the `trace` feature the Tracer is a no-op shell; the
    // cycle/stats equalities above are the test's substance either way.
    if cfg!(feature = "trace") {
        assert!(tracer.is_enabled() && !tracer.is_empty(), "trace captured");
        assert!(tracer.events().count() > 0);
    }
}

/// The metrics recorder is the same kind of observer as the tracer:
/// windowed sampling must not change a single simulated number relative
/// to running without it — at any sampling interval. Mirrors
/// [`tracing_does_not_change_a_single_cycle`]; holds in both feature
/// configurations (with `metrics` off the recorder is a no-op shell).
#[test]
fn metrics_do_not_change_a_single_cycle() {
    let w = vta_workloads::by_name("gzip", Scale::Test).expect("gzip exists");
    let plain = System::new(VirtualArchConfig::paper_default(), &w.image)
        .run(RUN_BUDGET)
        .expect("gzip runs");
    for interval in [1u64, 1000, 10_000] {
        let mut sys = System::new(VirtualArchConfig::paper_default(), &w.image);
        sys.enable_metrics(MetricsConfig {
            interval,
            ..MetricsConfig::default()
        });
        let sampled = sys.run(RUN_BUDGET).expect("gzip runs");
        assert_eq!(plain.cycles, sampled.cycles, "interval {interval}");
        assert_eq!(plain.guest_insns, sampled.guest_insns);
        assert_eq!(plain.output, sampled.output);
        assert_eq!(plain.stats, sampled.stats, "all counters identical");
        assert_eq!(
            plain.stats.fingerprint(),
            sampled.stats.fingerprint(),
            "stats digest identical with metrics on"
        );
        let m = sys.take_metrics();
        if cfg!(feature = "metrics") {
            assert!(m.is_enabled() && !m.is_empty(), "series captured");
            m.reconcile_stats(&sampled.stats)
                .expect("windowed sums telescope to the run totals");
        } else {
            assert!(m.is_empty());
        }
    }
}

/// The frozen `paper_default` cycle fingerprints in `BENCH_dispatch.json`
/// must match what the tree actually simulates. This is the regression
/// net for the whole observability subsystem (and any other change):
/// simulated behavior cannot drift silently.
#[test]
fn fingerprints_match_checked_in_json() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dispatch.json");
    let json = std::fs::read_to_string(path).expect("BENCH_dispatch.json exists");
    let expected = vta_bench::perf::parse_fingerprints(&json).expect("parseable fingerprints");
    // Checked at 1 and 4 host threads: the frozen fingerprints pin the
    // serial path AND the worker-pool path to the same simulation.
    let serial = vta_bench::perf::cycle_fingerprint(1, 1, 1);
    for fp in &serial {
        let want = expected
            .iter()
            .find(|(n, _)| n == fp.name)
            .unwrap_or_else(|| panic!("{} missing from BENCH_dispatch.json", fp.name));
        assert_eq!(
            fp.cycles, want.1,
            "{}: simulated cycles drifted from the checked-in fingerprint",
            fp.name
        );
    }
    let parallel = vta_bench::perf::cycle_fingerprint(4, 1, 1);
    assert_eq!(
        serial, parallel,
        "host worker threads changed a fingerprint (cycles or stats)"
    );
}

/// Partitioning the tile fabric across epoch-lockstepped host workers is
/// a wall-clock accelerator, never a semantic one: the fingerprints —
/// cycles AND the full stats digest — must be bit-identical at every
/// fabric worker count, alone and combined with host translator threads.
#[test]
fn fabric_workers_do_not_change_fingerprints() {
    let base = vta_bench::perf::cycle_fingerprint(1, 1, 1);
    for (threads, workers) in [(1usize, 2usize), (1, 4), (4, 2)] {
        let fp = vta_bench::perf::cycle_fingerprint(threads, workers, 1);
        assert_eq!(
            base, fp,
            "{workers} fabric workers x {threads} host threads changed a fingerprint"
        );
    }
}

/// Manager service shards are duty *attribution*, not timing: the
/// shards arbitrate on one shared service ring, so the fingerprints —
/// cycles AND the full stats digest — must be bit-identical at every
/// shard count, alone and combined with the other two host axes.
#[test]
fn manager_shards_do_not_change_fingerprints() {
    let base = vta_bench::perf::cycle_fingerprint(1, 1, 1);
    for (threads, workers, shards) in [(1usize, 1usize, 2usize), (1, 1, 4), (4, 2, 2)] {
        let fp = vta_bench::perf::cycle_fingerprint(threads, workers, shards);
        assert_eq!(
            base, fp,
            "{shards} manager shards x {workers} fabric workers x {threads} host threads \
             changed a fingerprint"
        );
    }
}

#[test]
fn gzip_runs_are_bit_identical() {
    let w = vta_workloads::by_name("gzip", Scale::Test).expect("gzip exists");
    let run = || {
        System::new(VirtualArchConfig::paper_default(), &w.image)
            .run(RUN_BUDGET)
            .expect("gzip runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.guest_insns, b.guest_insns);
    assert_eq!(a.exit_code, b.exit_code);
    assert_eq!(a.output, b.output);
    assert_eq!(a.stats, b.stats, "every counter and histogram identical");
}

#[test]
fn shared_translations_preserve_sweep_cell_results() {
    let w = vta_workloads::by_name("gzip", Scale::Test).expect("gzip exists");
    let cfg = VirtualArchConfig::with_translators(4, true);
    let base = System::new(cfg.clone(), &w.image)
        .run(RUN_BUDGET)
        .expect("gzip runs");
    let sh = SharedTranslations::new(cfg.opt);
    // Pass 0 fills the memo; pass 1 runs almost entirely from it.
    for pass in 0..2 {
        let mut sys = System::new(cfg.clone(), &w.image);
        sys.attach_shared(Arc::clone(&sh));
        let r = sys.run(RUN_BUDGET).expect("gzip runs");
        assert_eq!(r.cycles, base.cycles, "pass {pass}");
        assert_eq!(r.guest_insns, base.guest_insns, "pass {pass}");
        assert_eq!(r.stats, base.stats, "pass {pass}");
    }
    assert!(!sh.is_empty(), "memo was populated");
}

#[test]
fn opt_level_mismatch_refuses_shared_memo() {
    let w = vta_workloads::by_name("gzip", Scale::Test).expect("gzip exists");
    let cfg = VirtualArchConfig::paper_default();
    let base = System::new(cfg.clone(), &w.image)
        .run(RUN_BUDGET)
        .expect("gzip runs");
    // A memo at the wrong opt level is silently ignored at attach.
    let sh = SharedTranslations::new(vta_ir::OptLevel::None);
    assert_ne!(cfg.opt, vta_ir::OptLevel::None, "test needs a mismatch");
    let mut sys = System::new(cfg, &w.image);
    sys.attach_shared(Arc::clone(&sh));
    let r = sys.run(RUN_BUDGET).expect("gzip runs");
    assert_eq!(r.cycles, base.cycles);
    assert!(sh.is_empty(), "refused memo must stay untouched");
}
