//! Determinism regression: the simulator is a pure function of
//! `(guest image, configuration)`. Two runs must agree bit-for-bit on
//! every simulated number — cycles, instruction counts, and the entire
//! statistics set — and host-side accelerators (the cross-system
//! translation memo) must not perturb any of it.

use std::sync::Arc;

use vta_bench::RUN_BUDGET;
use vta_dbt::{SharedTranslations, System, VirtualArchConfig};
use vta_workloads::Scale;

#[test]
fn gzip_runs_are_bit_identical() {
    let w = vta_workloads::by_name("gzip", Scale::Test).expect("gzip exists");
    let run = || {
        System::new(VirtualArchConfig::paper_default(), &w.image)
            .run(RUN_BUDGET)
            .expect("gzip runs")
    };
    let a = run();
    let b = run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.guest_insns, b.guest_insns);
    assert_eq!(a.exit_code, b.exit_code);
    assert_eq!(a.output, b.output);
    assert_eq!(a.stats, b.stats, "every counter and histogram identical");
}

#[test]
fn shared_translations_preserve_sweep_cell_results() {
    let w = vta_workloads::by_name("gzip", Scale::Test).expect("gzip exists");
    let cfg = VirtualArchConfig::with_translators(4, true);
    let base = System::new(cfg.clone(), &w.image)
        .run(RUN_BUDGET)
        .expect("gzip runs");
    let sh = SharedTranslations::new(cfg.opt);
    // Pass 0 fills the memo; pass 1 runs almost entirely from it.
    for pass in 0..2 {
        let mut sys = System::new(cfg.clone(), &w.image);
        sys.attach_shared(Arc::clone(&sh));
        let r = sys.run(RUN_BUDGET).expect("gzip runs");
        assert_eq!(r.cycles, base.cycles, "pass {pass}");
        assert_eq!(r.guest_insns, base.guest_insns, "pass {pass}");
        assert_eq!(r.stats, base.stats, "pass {pass}");
    }
    assert!(!sh.is_empty(), "memo was populated");
}

#[test]
fn opt_level_mismatch_refuses_shared_memo() {
    let w = vta_workloads::by_name("gzip", Scale::Test).expect("gzip exists");
    let cfg = VirtualArchConfig::paper_default();
    let base = System::new(cfg.clone(), &w.image)
        .run(RUN_BUDGET)
        .expect("gzip runs");
    // A memo at the wrong opt level is silently ignored at attach.
    let sh = SharedTranslations::new(vta_ir::OptLevel::None);
    assert_ne!(cfg.opt, vta_ir::OptLevel::None, "test needs a mismatch");
    let mut sys = System::new(cfg, &w.image);
    sys.attach_shared(Arc::clone(&sh));
    let r = sys.run(RUN_BUDGET).expect("gzip runs");
    assert_eq!(r.cycles, base.cycles);
    assert!(sh.is_empty(), "refused memo must stay untouched");
}
