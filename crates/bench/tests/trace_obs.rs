//! End-to-end checks for the cycle-accurate observability subsystem:
//! traced runs of real benchmarks produce valid Chrome-trace JSON, and
//! the utilization report tells the paper's story — translation slaves
//! saturated, and the manager the busiest of the *shared service* tiles
//! (its software loop assigns work, looks up the L2 code cache, and
//! commits finished blocks; §2.2).

// The whole suite reads recorded events; without the `trace` feature the
// Tracer is a no-op shell and there is nothing to observe.
#![cfg(feature = "trace")]

use vta_bench::json_lint;
use vta_bench::trace::{chrome_trace_json, trace_benchmark, utilization_report};
use vta_dbt::VirtualArchConfig;
use vta_workloads::Scale;

/// Busy cycles per service-tile role, from a traced run.
fn service_busy(bench: &str) -> (u64, Vec<(String, u64)>) {
    let (report, tracer) = trace_benchmark(
        bench,
        Scale::Test,
        VirtualArchConfig::paper_default(),
        1 << 16,
    );
    let services: Vec<(String, u64)> = tracer
        .tracks()
        .filter(|(_, name)| {
            ["manager", "mmu", "l15", "l2bank", "syscall"]
                .iter()
                .any(|role| name.ends_with(role))
        })
        .map(|(id, name)| (name.to_string(), tracer.busy_cycles(id)))
        .collect();
    (report.cycles, services)
}

#[test]
fn manager_is_the_busiest_service_tile() {
    for bench in ["vpr", "gcc", "crafty"] {
        let (cycles, services) = service_busy(bench);
        assert!(cycles > 0);
        let (busiest, busy) = services
            .iter()
            .max_by_key(|(_, b)| *b)
            .expect("service tiles traced");
        assert!(
            busiest.ends_with("manager"),
            "{bench}: busiest service tile is {busiest} ({busy} cycles), \
             expected the manager: {services:?}"
        );
        assert!(*busy > 0, "{bench}: manager did work");
    }
}

#[test]
fn traced_run_exports_valid_chrome_json() {
    let (report, tracer) = trace_benchmark(
        "vpr",
        Scale::Test,
        VirtualArchConfig::paper_default(),
        1 << 16,
    );
    let json = chrome_trace_json(&tracer);
    json_lint::check(&json).expect("exporter emits syntactically valid JSON");
    assert!(json.contains("\"thread_name\""), "track metadata present");
    assert!(json.contains("exec"), "exec tile track named");
    assert!(json.contains("\"name\":\"network\""), "network track named");
    assert!(
        json.contains("\"hops\":"),
        "network messages carry hop counts"
    );

    let report_text = utilization_report(&tracer, report.cycles);
    assert!(report_text.contains("busy"), "busy table present");
    assert!(report_text.contains("top links"), "link table present");
    assert!(
        report_text.contains("specq.depth"),
        "queue-depth percentiles present"
    );
}

/// The ring drops oldest events under pressure, but the side-aggregates
/// (busy cycles, link traffic, counter percentiles) stay exact.
#[test]
fn tiny_ring_still_reports_exact_aggregates() {
    let (report, big) = trace_benchmark(
        "gzip",
        Scale::Test,
        VirtualArchConfig::paper_default(),
        1 << 20,
    );
    let (report2, small) =
        trace_benchmark("gzip", Scale::Test, VirtualArchConfig::paper_default(), 64);
    assert_eq!(
        report.cycles, report2.cycles,
        "capacity never affects timing"
    );
    assert!(small.dropped() > 0, "64-slot ring must overflow");
    assert_eq!(small.len(), 64);
    for (id, name) in big.tracks() {
        let (id2, _) = small
            .tracks()
            .find(|(_, n)| *n == name)
            .expect("same tracks registered");
        assert_eq!(
            big.busy_cycles(id),
            small.busy_cycles(id2),
            "busy cycles for {name} independent of ring capacity"
        );
    }
    let links_a: Vec<_> = big.links().collect();
    let links_b: Vec<_> = small.links().collect();
    assert_eq!(
        links_a, links_b,
        "link traffic independent of ring capacity"
    );
}
